"""One function per table/figure of the paper's evaluation (§9, §D).

Every function returns an :class:`ExperimentResult` holding labelled
series (lists of :class:`~repro.bench.harness.LoadPoint` or plain rows)
plus automated *shape checks* — the acceptance criteria from DESIGN.md
(who wins, by roughly what factor).  ``scale`` trades fidelity for wall
time: 1.0 runs the full sweeps recorded in EXPERIMENTS.md; the benchmark
suite defaults to a smaller scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..baseline import CassandraConfig
from ..chaos.invariants import InvariantAuditor
from ..chaos.nemesis import FaultEvent, arm_schedule
from ..core import SpinnakerCluster, SpinnakerConfig
from ..core.checker import HistoryRecorder, check_strong_history
from ..core.datamodel import DatastoreError, RequestTimeout
from ..core.partition import key_of
from ..core.rebalance import Rebalancer, plan_join
from ..sim.disk import DiskProfile
from ..sim.metrics import Histogram
from ..sim.process import spawn, timeout
from ..sim.topology import Topology
from .harness import CassandraTarget, LoadPoint, SpinnakerTarget, run_load
from .openloop import PoissonArrivals, run_open_load
from .workload import (VALUE_SIZE, conditional_put_workload, mixed_workload,
                       read_workload, write_workload)

__all__ = [
    "ExperimentResult",
    "fig8_read_latency", "fig9_write_latency", "table1_recovery",
    "fig11_scaling", "fig11_elastic", "fig12_mixed", "fig12_scale",
    "fig13_ssd",
    "fig14_conditional_put", "fig_recovery", "fig_wan", "fig_tune",
    "fig15_weak_writes", "fig16_memory_log",
    "ablation_parallel_propose", "ablation_group_commit",
    "ablation_piggyback_commits", "ablation_skewed_reads",
    "ablation_batching",
    "ALL_EXPERIMENTS", "PHASE_PROBES",
]


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    series: Dict[str, List] = field(default_factory=dict)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: str = ""
    #: per-phase latency attribution from a fixed-size traced probe run
    #: (see :func:`_phase_probe`); ``{op: {count, total_mean_ms, phases}}``
    #: as produced by :func:`repro.obs.phase_summary`.  Empty when the
    #: experiment defines no probe.
    phases: Dict[str, dict] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(self.checks.values())


def _threads(base: List[int], scale: float, floor: int = 2) -> List[int]:
    out = []
    for t in base:
        scaled = max(floor, int(round(t * scale)))
        if not out or scaled > out[-1]:
            out.append(scaled)
    return out


def _ops(scale: float, base: int = 50) -> int:
    return max(15, int(round(base * min(1.0, scale * 2))))


def _phase_probe(spin_cfg=None, workload=None, threads: int = 16,
                 ops: int = 30, n_nodes: int = 10,
                 seed: int = 1) -> Dict[str, dict]:
    """One fixed-size traced load point for per-phase attribution.

    Deliberately *not* scaled by ``scale``: the probe is cheap (a few
    hundred requests, every one traced) and keeping its size fixed makes
    the ``phases`` section of ``BENCH_report.json`` comparable across
    report scales.  The probe runs a separate cluster from the latency
    sweeps, so tracing overhead can never contaminate the curves.
    """
    from ..obs import RequestTracer, phase_summary
    tracer = RequestTracer(sample_every=1)
    target = SpinnakerTarget(n_nodes, config=spin_cfg, seed=seed,
                             request_tracer=tracer)
    run_load(target, workload or write_workload(), threads,
             ops_per_thread=ops, warmup_ops=8)
    return phase_summary(tracer)


#: Experiments with a phase-attribution probe: exp_id -> probe callable.
#: ``bench/report.py`` uses this both when building fresh reports and to
#: refresh only the ``phases`` sections of an existing report.
PHASE_PROBES: Dict[str, Callable[..., Dict[str, dict]]] = {
    "fig8": lambda seed=1, n_nodes=10: _phase_probe(
        workload=read_workload("strong", preload_rows=500),
        n_nodes=n_nodes, seed=seed),
    "fig9": lambda seed=1, n_nodes=10: _phase_probe(
        n_nodes=n_nodes, seed=seed),
    "fig13": lambda seed=1, n_nodes=10: _phase_probe(
        spin_cfg=SpinnakerConfig(log_profile=DiskProfile.ssd_log()),
        n_nodes=n_nodes, seed=seed),
    "fig16": lambda seed=1, n_nodes=10: _phase_probe(
        spin_cfg=SpinnakerConfig(log_profile=DiskProfile.memory_log()),
        n_nodes=n_nodes, seed=seed),
    # Same mixed workload as the open-loop scale sweep, at probe size:
    # per-phase attribution is per-request and size-invariant, so the
    # small traced cluster explains where the big sweep's latency goes.
    "fig12-scale": lambda seed=1, n_nodes=10: _phase_probe(
        spin_cfg=SpinnakerConfig(log_profile=DiskProfile.ssd_log()),
        workload=mixed_workload(0.2, "strong"),
        n_nodes=n_nodes, seed=seed),
}


def _interp_at(points: List[LoadPoint], load: float) -> Optional[float]:
    """Mean latency (ms) interpolated at a given throughput."""
    pts = sorted(points, key=lambda p: p.throughput)
    if not pts or load < pts[0].throughput:
        return pts[0].mean_ms if pts else None
    for lo, hi in zip(pts, pts[1:]):
        if lo.throughput <= load <= hi.throughput:
            span = hi.throughput - lo.throughput
            if span <= 0:
                return lo.mean_ms
            frac = (load - lo.throughput) / span
            return lo.mean_ms * (1 - frac) + hi.mean_ms * frac
    return None  # beyond the curve's knee


def _max_load(points: List[LoadPoint]) -> float:
    return max(p.throughput for p in points)


# ---------------------------------------------------------------------------
# Figure 8: average read latency vs load
# ---------------------------------------------------------------------------

def fig8_read_latency(scale: float = 1.0, seed: int = 1,
                      n_nodes: int = 10) -> ExperimentResult:
    """§9.1: Spinnaker consistent/timeline vs Cassandra quorum/weak."""
    ths = _threads([8, 24, 64, 128, 256, 384, 512], scale)
    ops = _ops(scale)
    result = ExperimentResult("fig8", "Average read latency vs load")

    def sweep_reads(label, factory, mode):
        wl = read_workload(mode, preload_rows=500)
        result.series[label] = [
            run_load(factory(), wl, t, ops_per_thread=ops, warmup_ops=15)
            for t in ths]

    sweep_reads("spinnaker-consistent",
                lambda: SpinnakerTarget(n_nodes, seed=seed), "strong")
    sweep_reads("spinnaker-timeline",
                lambda: SpinnakerTarget(n_nodes, seed=seed), "timeline")
    sweep_reads("cassandra-quorum",
                lambda: CassandraTarget(n_nodes, seed=seed), "quorum")
    sweep_reads("cassandra-weak",
                lambda: CassandraTarget(n_nodes, seed=seed), "weak")

    cons = result.series["spinnaker-consistent"]
    tl = result.series["spinnaker-timeline"]
    quo = result.series["cassandra-quorum"]
    weak = result.series["cassandra-weak"]
    # Shape checks (paper: quorum 1.5x-3.0x worse; knee sooner;
    # timeline ~= weak).
    ratios = []
    for point in quo:
        base = _interp_at(cons, point.throughput)
        if base:
            ratios.append(point.mean_ms / base)
    result.checks["quorum_read_1.5x_to_3x_slower"] = (
        bool(ratios) and max(ratios) >= 1.5 and min(ratios) >= 1.0)
    result.checks["quorum_knee_before_consistent"] = (
        _max_load(quo) < 0.8 * _max_load(cons))
    tl_low, weak_low = tl[0].mean_ms, weak[0].mean_ms
    result.checks["timeline_matches_weak"] = (
        abs(tl_low - weak_low) / weak_low < 0.25)
    result.notes = (f"low-load ms: consistent={cons[0].mean_ms:.2f} "
                    f"timeline={tl_low:.2f} quorum={quo[0].mean_ms:.2f} "
                    f"weak={weak_low:.2f}")
    result.phases = PHASE_PROBES["fig8"](seed=seed, n_nodes=n_nodes)
    return result


# ---------------------------------------------------------------------------
# Figure 9: average write latency vs load (SATA log)
# ---------------------------------------------------------------------------

def _write_sweep(result, ths, ops, spin_cfg=None, cass_cfg=None,
                 seed=1, n_nodes=10, spin_label="spinnaker-writes",
                 cass_label="cassandra-quorum-writes",
                 cass_mode="quorum", include_cassandra=True):
    wl_spin = write_workload()
    result.series[spin_label] = [
        run_load(SpinnakerTarget(n_nodes, config=spin_cfg, seed=seed),
                 wl_spin, t, ops_per_thread=ops, warmup_ops=10)
        for t in ths]
    if include_cassandra:
        wl_cass = write_workload(cass_mode)
        result.series[cass_label] = [
            run_load(CassandraTarget(n_nodes, config=cass_cfg, seed=seed),
                     wl_cass, t, ops_per_thread=ops, warmup_ops=10)
            for t in ths]


def fig9_write_latency(scale: float = 1.0, seed: int = 1,
                       n_nodes: int = 10) -> ExperimentResult:
    """§9.2: Spinnaker writes 5-10% slower than Cassandra quorum writes."""
    ths = _threads([4, 8, 16, 32, 64, 96], scale)
    result = ExperimentResult("fig9", "Average write latency vs load")
    _write_sweep(result, ths, _ops(scale, 40), seed=seed, n_nodes=n_nodes)
    spin = result.series["spinnaker-writes"]
    cass = result.series["cassandra-quorum-writes"]
    gaps = [s.mean_ms / c.mean_ms - 1.0 for s, c in zip(spin, cass)]
    mean_gap = sum(gaps) / len(gaps)
    # Paper: 5-10% across the board.  Individual points are noisy at
    # small sample sizes, so bound each loosely and the mean tightly.
    result.checks["per_point_gap_reasonable"] = all(
        -0.08 <= g <= 0.25 for g in gaps)
    result.checks["mean_gap_roughly_5_to_10pct"] = 0.02 <= mean_gap <= 0.18
    result.notes = (f"mean gap {mean_gap:+.1%}; per point: "
                    + ", ".join(f"{g:+.1%}" for g in gaps))
    result.phases = PHASE_PROBES["fig9"](seed=seed, n_nodes=n_nodes)
    return result


# ---------------------------------------------------------------------------
# Table 1: cohort recovery time vs commit period
# ---------------------------------------------------------------------------

def table1_recovery(scale: float = 1.0, seed: int = 2,
                    commit_periods: Optional[List[float]] = None
                    ) -> ExperimentResult:
    """§D.1: leader killed; recovery time proportional to commit period.

    Per the paper, the coordination-service failure-detection timeout is
    excluded: the leader's session is expired at kill time.
    """
    periods = commit_periods or [1.0, 5.0, 10.0, 15.0]
    if scale < 0.5:
        periods = [p for p in periods if p <= 5.0] or periods[:2]
    result = ExperimentResult(
        "table1", "Cohort recovery time vs commit period")
    rows = []
    for period in periods:
        recovery = _measure_recovery(period, seed)
        rows.append({"commit_period_s": period,
                     "recovery_time_s": round(recovery, 3)})
    result.series["recovery"] = rows
    times = [r["recovery_time_s"] for r in rows]
    result.checks["recovery_grows_with_commit_period"] = all(
        b > a for a, b in zip(times, times[1:]))
    result.checks["subsecond_at_1s_period"] = times[0] < 1.0
    if len(times) >= 2:
        slope = ((times[-1] - times[0])
                 / (rows[-1]["commit_period_s"] - rows[0]["commit_period_s"]))
        # The paper measures ~0.26 s of recovery per second of commit
        # period; proposal batching re-proposes the unresolved tail in
        # multi-record batches, cutting the constant to ~0.04 s/s while
        # keeping recovery proportional to the period (see
        # EXPERIMENTS.md, "Ablation: proposal batching").
        result.checks["roughly_linear_slope"] = 0.01 < slope < 1.0
        result.notes = (f"slope={slope:.3f} s/s (paper ~0.26 s/s "
                        f"unbatched; batched re-propose shrinks it)")
    return result


def _measure_recovery(commit_period: float, seed: int,
                      config: Optional[SpinnakerConfig] = None) -> float:
    cfg = config or SpinnakerConfig()
    cfg.commit_period = commit_period
    cluster = SpinnakerCluster(n_nodes=5, config=cfg, seed=seed)
    cluster.start()
    client = cluster.client("t1client")
    cohort_id = 0
    # A single client writes 4KB values routed to one cohort (§D.1).
    keys = []
    i = 0
    while len(keys) < 5000:
        key = b"t1-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    stop = {"stop": False}
    value = b"x" * VALUE_SIZE

    def writer():
        from ..core.datamodel import DatastoreError
        for key in keys:
            if stop["stop"]:
                return
            try:
                yield from client.put(key, b"v", value)
            except DatastoreError:
                continue

    spawn(cluster.sim, writer(), name="t1-writer")
    leader_name = cluster.leader_of(cohort_id)
    replica = cluster.replica(leader_name, cohort_id)
    # Let the pipeline warm up past one commit broadcast...
    cluster.run_until(lambda: replica.last_broadcast_at > 0, limit=60.0,
                      what="first commit broadcast")
    cluster.run(commit_period * 1.0)
    # ...then kill the leader just before the *next* commit message, so
    # the unresolved backlog spans (almost) a full commit period.
    target = replica.last_broadcast_at + 0.95 * commit_period
    if target > cluster.sim.now:
        cluster.run(target - cluster.sim.now)
    t_kill = cluster.sim.now
    cluster.kill_leader(cohort_id, skip_detection=True)
    stop["stop"] = True
    cluster.run_until(lambda: cluster.leader_of(cohort_id) is not None,
                      limit=300.0, step=0.01, what="re-election")
    return cluster.sim.now - t_kill


# ---------------------------------------------------------------------------
# Figure 11: write latency vs cluster size (EC2)
# ---------------------------------------------------------------------------

def fig11_scaling(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """§D.2: latency stays ~flat as the cluster grows (fixed per-node
    load).  EC2 could not disable the disk write cache, so the EC2 disk
    profile applies."""
    sizes = [20, 40, 80] if scale >= 1.0 else [10, 20, 40]
    threads_per_node = 3
    ops = _ops(scale, 40)
    result = ExperimentResult("fig11",
                              "Write latency vs cluster size (EC2)")
    spin_rows, cass_rows = [], []
    for n in sizes:
        spin_cfg = SpinnakerConfig(log_profile=DiskProfile.ec2_log())
        cass_cfg = CassandraConfig(log_profile=DiskProfile.ec2_log())
        spin = run_load(SpinnakerTarget(n, config=spin_cfg, seed=seed),
                        write_workload(), n * threads_per_node,
                        ops_per_thread=ops, warmup_ops=10)
        cass = run_load(CassandraTarget(n, config=cass_cfg, seed=seed),
                        write_workload("quorum"), n * threads_per_node,
                        ops_per_thread=ops, warmup_ops=10)
        spin_rows.append({"nodes": n, "mean_ms": spin.mean_ms,
                          "throughput": spin.throughput})
        cass_rows.append({"nodes": n, "mean_ms": cass.mean_ms,
                          "throughput": cass.throughput})
    result.series["spinnaker-writes"] = spin_rows
    result.series["cassandra-quorum-writes"] = cass_rows
    for label, rows in result.series.items():
        lats = [r["mean_ms"] for r in rows]
        result.checks[f"{label}_flat"] = max(lats) / min(lats) < 1.35
    return result


# ---------------------------------------------------------------------------
# Figure 12: mixed workload, latency vs write percentage
# ---------------------------------------------------------------------------

def fig12_mixed(scale: float = 1.0, seed: int = 1,
                n_nodes: int = 10) -> ExperimentResult:
    """§D.3: fixed load (2 client threads), write %% swept 0-60%."""
    fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
    if scale < 0.5:
        fractions = [0.0, 0.1, 0.3, 0.5]
    ops = _ops(scale, 120)
    threads = 2
    result = ExperimentResult("fig12", "Mixed workload latency vs write %")

    def series(label, factory, read_mode):
        rows = []
        for frac in fractions:
            wl = mixed_workload(frac, read_mode)
            point = run_load(factory(), wl, threads, ops_per_thread=ops,
                             warmup_ops=10)
            rows.append({"write_pct": int(frac * 100),
                         "mean_ms": point.mean_ms})
        result.series[label] = rows

    series("spinnaker-consistent-mix",
           lambda: SpinnakerTarget(n_nodes, seed=seed), "strong")
    series("spinnaker-timeline-mix",
           lambda: SpinnakerTarget(n_nodes, seed=seed), "timeline")
    series("cassandra-quorum-mix",
           lambda: CassandraTarget(n_nodes, seed=seed), "quorum")
    series("cassandra-weak-mix",
           lambda: CassandraTarget(n_nodes, seed=seed), "weak")

    for label, rows in result.series.items():
        lats = [r["mean_ms"] for r in rows]
        result.checks[f"{label}_rises_with_writes"] = lats[-1] > lats[0]
    # At low write %, the consistent mix beats the quorum mix; at high
    # write %, Cassandra closes the gap / wins (paper: +10% vs -7%).
    spin = {r["write_pct"]: r["mean_ms"]
            for r in result.series["spinnaker-consistent-mix"]}
    cass = {r["write_pct"]: r["mean_ms"]
            for r in result.series["cassandra-quorum-mix"]}
    low = min(p for p in spin if p > 0)
    high = max(spin)
    result.checks["spinnaker_wins_low_write_pct"] = spin[low] < cass[low]
    result.checks["gap_narrows_or_flips_at_high_write_pct"] = (
        (cass[high] - spin[high]) / spin[high]
        < (cass[low] - spin[low]) / spin[low])
    return result


# ---------------------------------------------------------------------------
# Open-loop scale-out (north-star experiment, beyond the paper)
# ---------------------------------------------------------------------------

def fig12_scale(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Open-loop throughput scaling: node count swept to 512 under a
    fixed *per-node* Poisson offered load with ~2K modeled users per
    node (1,048,576 users at 512 nodes).

    The paper stops at 80 nodes with closed-loop clients (Fig. 11);
    this experiment pushes the repo's north-star claim — Spinnaker's
    per-cohort replication has no cluster-wide coordination on the data
    path, so completed throughput per node should stay flat as the
    cluster grows.  Open-loop arrivals (see :mod:`repro.bench.openloop`)
    keep the offered load independent of completions, so a node-count-
    dependent slowdown would surface as shed arrivals and rising
    latency rather than a silently self-throttled client loop.
    """
    if scale >= 1.0:
        sizes = [64, 128, 256, 512]
        users_per_node = 2048
    elif scale >= 0.2:
        sizes = [16, 32, 64]
        users_per_node = 512
    else:               # bench-smoke tier
        sizes = [8]
        users_per_node = 256
    per_node_rate = 30.0       # offered ops/sec per node, below the knee
    duration, warmup = 3.0, 1.0
    result = ExperimentResult(
        "fig12-scale", "Open-loop throughput scaling to 512 nodes")
    rows = []
    for n in sizes:
        cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log())
        target = SpinnakerTarget(n, config=cfg, seed=seed)
        point = run_open_load(
            target, mixed_workload(0.2, "strong"),
            n_users=n * users_per_node, rate=n * per_node_rate,
            duration=duration, warmup=warmup,
            arrivals=PoissonArrivals, shards=max(4, n // 8), seed=seed)
        rows.append({
            "nodes": n, "users": point.n_users,
            "active_users": point.active_users,
            "offered_per_s": point.offered_rate,
            "observed_offered_per_s": round(point.observed_offered, 1),
            "throughput": round(point.throughput, 1),
            "per_node_throughput": round(point.throughput / n, 2),
            "mean_ms": round(point.mean_ms, 3),
            "p50_ms": round(point.p50_ms, 3),
            "p95_ms": round(point.p95_ms, 3),
            "p99_ms": round(point.p99_ms, 3),
            "ops": point.ops, "errors": point.errors, "shed": point.shed,
            "user_state_mib": round(point.user_state_bytes / 2 ** 20, 2),
        })
    result.series["spinnaker-open-loop"] = rows
    per_node = [r["per_node_throughput"] for r in rows]
    ratio = max(per_node) / min(per_node) if min(per_node) > 0 else 1e9
    result.checks["throughput_linear"] = ratio < 1.25
    result.checks["no_overload_shedding"] = all(
        r["shed"] <= max(1, 0.01 * r["offered_per_s"] * duration)
        for r in rows)
    result.checks["latency_flat_across_sizes"] = (
        max(r["p95_ms"] for r in rows)
        / max(min(r["p95_ms"] for r in rows), 1e-9) < 2.0)
    result.checks["users_modeled"] = (
        rows[-1]["users"] >= sizes[-1] * users_per_node)
    result.notes = (
        f"per-node throughput {min(per_node):.1f}-{max(per_node):.1f} "
        f"ops/s across {sizes[0]}-{sizes[-1]} nodes "
        f"(max/min {ratio:.3f}); {rows[-1]['users']:,} modeled users at "
        f"{sizes[-1]} nodes in {rows[-1]['user_state_mib']} MiB of "
        f"per-user state")
    result.phases = PHASE_PROBES["fig12-scale"](seed=seed)
    return result


# ---------------------------------------------------------------------------
# Figures 13-16 and ablations
# ---------------------------------------------------------------------------

def fig13_ssd(scale: float = 1.0, seed: int = 1,
              n_nodes: int = 10) -> ExperimentResult:
    """§D.4: SSD log drops write latency to ~6 ms or less."""
    ths = _threads([8, 24, 64, 128, 256], scale)
    result = ExperimentResult("fig13", "Write latency with an SSD log")
    _write_sweep(result, ths, _ops(scale, 40),
                 spin_cfg=SpinnakerConfig(log_profile=DiskProfile.ssd_log()),
                 cass_cfg=CassandraConfig(log_profile=DiskProfile.ssd_log()),
                 seed=seed, n_nodes=n_nodes,
                 spin_label="spinnaker-writes-ssd",
                 cass_label="cassandra-quorum-writes-ssd")
    spin = result.series["spinnaker-writes-ssd"]
    cass = result.series["cassandra-quorum-writes-ssd"]
    result.checks["most_points_under_6ms"] = (
        sum(p.mean_ms <= 6.0 for p in spin + cass)
        >= 0.7 * len(spin + cass))
    result.notes = (f"spinnaker low-load {spin[0].mean_ms:.2f} ms; "
                    f"cassandra {cass[0].mean_ms:.2f} ms")
    result.phases = PHASE_PROBES["fig13"](seed=seed, n_nodes=n_nodes)
    return result


def fig14_conditional_put(scale: float = 1.0, seed: int = 1,
                          n_nodes: int = 10) -> ExperimentResult:
    """§D.5: conditional put marginally worse than regular put."""
    ths = _threads([4, 8, 16, 32, 64, 96], scale)
    ops = _ops(scale, 40)
    result = ExperimentResult("fig14", "Conditional put vs regular put")
    result.series["regular-put"] = [
        run_load(SpinnakerTarget(n_nodes, seed=seed), write_workload(), t,
                 ops_per_thread=ops, warmup_ops=10) for t in ths]
    result.series["conditional-put"] = [
        run_load(SpinnakerTarget(n_nodes, seed=seed),
                 conditional_put_workload(), t,
                 ops_per_thread=ops, warmup_ops=10) for t in ths]
    reg = result.series["regular-put"]
    cond = result.series["conditional-put"]
    gaps = [c.mean_ms / r.mean_ms - 1.0 for c, r in zip(cond, reg)]
    result.checks["conditional_marginally_worse"] = all(
        -0.03 <= g <= 0.35 for g in gaps)
    result.checks["conditional_not_free"] = sum(gaps) / len(gaps) > 0.0
    result.notes = "gap per point: " + ", ".join(f"{g:+.1%}" for g in gaps)
    return result


def fig15_weak_writes(scale: float = 1.0, seed: int = 1,
                      n_nodes: int = 10) -> ExperimentResult:
    """§D.6.1: Cassandra quorum writes 40-50% slower than weak writes."""
    ths = _threads([4, 8, 16, 32, 64, 96], scale)
    ops = _ops(scale, 40)
    result = ExperimentResult("fig15", "Cassandra weak vs quorum writes")
    result.series["cassandra-weak-writes"] = [
        run_load(CassandraTarget(n_nodes, seed=seed),
                 write_workload("weak"), t,
                 ops_per_thread=ops, warmup_ops=10) for t in ths]
    result.series["cassandra-quorum-writes"] = [
        run_load(CassandraTarget(n_nodes, seed=seed),
                 write_workload("quorum"), t,
                 ops_per_thread=ops, warmup_ops=10) for t in ths]
    weak = result.series["cassandra-weak-writes"]
    quo = result.series["cassandra-quorum-writes"]
    gaps = [q.mean_ms / w.mean_ms - 1.0 for q, w in zip(quo, weak)]
    result.checks["quorum_25_to_70pct_slower"] = all(
        0.10 <= g <= 0.80 for g in gaps)
    result.notes = "gap per point: " + ", ".join(f"{g:+.0%}" for g in gaps)
    return result


def fig16_memory_log(scale: float = 1.0, seed: int = 1,
                     n_nodes: int = 10) -> ExperimentResult:
    """§D.6.2: commit to 2-of-3 main-memory logs → ~2 ms writes."""
    ths = _threads([8, 24, 64, 128, 256], scale)
    ops = _ops(scale, 40)
    result = ExperimentResult("fig16", "Writes with a main-memory log")
    cfg = SpinnakerConfig(log_profile=DiskProfile.memory_log())
    result.series["spinnaker-writes-memlog"] = [
        run_load(SpinnakerTarget(n_nodes, config=cfg, seed=seed),
                 write_workload(), t, ops_per_thread=ops, warmup_ops=10)
        for t in ths]
    points = result.series["spinnaker-writes-memlog"]
    result.checks["around_2ms_before_knee"] = (
        min(p.mean_ms for p in points) <= 3.0)
    result.notes = f"low-load latency {points[0].mean_ms:.2f} ms"
    result.phases = PHASE_PROBES["fig16"](seed=seed, n_nodes=n_nodes)
    return result


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------

def ablation_parallel_propose(scale: float = 1.0,
                              seed: int = 1) -> ExperimentResult:
    """Fig. 4's parallel force+propose vs a naive serialized leader."""
    ths = _threads([8, 32, 64], scale)
    ops = _ops(scale, 40)
    result = ExperimentResult(
        "ablation-parallel", "Parallel vs serialized force+propose")
    for label, flag in (("parallel", True), ("serialized", False)):
        cfg = SpinnakerConfig(parallel_force_and_propose=flag)
        result.series[label] = [
            run_load(SpinnakerTarget(10, config=cfg, seed=seed),
                     write_workload(), t, ops_per_thread=ops,
                     warmup_ops=10) for t in ths]
    par = result.series["parallel"]
    ser = result.series["serialized"]
    result.checks["parallel_is_faster"] = all(
        p.mean_ms < s.mean_ms for p, s in zip(par, ser))
    gaps = [s.mean_ms / p.mean_ms - 1.0 for p, s in zip(par, ser)]
    result.notes = "serialized penalty: " + ", ".join(
        f"{g:+.0%}" for g in gaps)
    return result


def ablation_group_commit(scale: float = 1.0,
                          seed: int = 1) -> ExperimentResult:
    """Group commit [13] under concurrent writers."""
    ths = _threads([16, 48, 96], scale)
    ops = _ops(scale, 40)
    result = ExperimentResult("ablation-groupcommit",
                              "Group commit on vs off")
    for label, flag in (("group-commit", True), ("no-group-commit", False)):
        cfg = SpinnakerConfig(group_commit=flag)
        result.series[label] = [
            run_load(SpinnakerTarget(10, config=cfg, seed=seed),
                     write_workload(), t, ops_per_thread=ops,
                     warmup_ops=10) for t in ths]
    on = result.series["group-commit"]
    off = result.series["no-group-commit"]
    result.checks["group_commit_helps_under_load"] = (
        on[-1].mean_ms < off[-1].mean_ms)
    return result


def ablation_piggyback_commits(scale: float = 1.0,
                               seed: int = 3) -> ExperimentResult:
    """§D.1's note: piggybacking commit info on proposes shrinks the
    unresolved window, making recovery time ~independent of the commit
    period."""
    periods = [1.0, 5.0] if scale < 1.0 else [1.0, 5.0, 10.0]
    result = ExperimentResult(
        "ablation-piggyback", "Commit piggybacking vs recovery time")
    rows_plain, rows_piggy = [], []
    for period in periods:
        # Batching off in both arms: batched takeover re-propose also
        # flattens recovery, which would mask the effect this ablation
        # isolates (the unresolved-window size).
        plain = _measure_recovery(
            period, seed, config=SpinnakerConfig(propose_batching=False))
        cfg = SpinnakerConfig(piggyback_commits=True,
                              propose_batching=False)
        piggy = _measure_recovery(period, seed, config=cfg)
        rows_plain.append({"commit_period_s": period,
                           "recovery_time_s": round(plain, 3)})
        rows_piggy.append({"commit_period_s": period,
                           "recovery_time_s": round(piggy, 3)})
    result.series["periodic-commit-msgs"] = rows_plain
    result.series["piggybacked-commits"] = rows_piggy
    spread_plain = (rows_plain[-1]["recovery_time_s"]
                    - rows_plain[0]["recovery_time_s"])
    spread_piggy = (rows_piggy[-1]["recovery_time_s"]
                    - rows_piggy[0]["recovery_time_s"])
    result.checks["piggyback_flattens_recovery"] = (
        spread_piggy < 0.5 * spread_plain)
    return result


def ablation_skewed_reads(scale: float = 1.0,
                          seed: int = 1) -> ExperimentResult:
    """Beyond the paper: Zipfian key skew concentrates strong reads on
    the hot range's leader, while timeline reads spread the hot range
    over its three replicas — quantifying the §8.3 trade-off ("all the
    reads for a cohort have to be routed to the cohort's leader")."""
    ths = _threads([64, 160, 256], scale)
    ops = _ops(scale, 40)
    result = ExperimentResult(
        "ablation-skew", "Uniform vs Zipfian reads (strong vs timeline)")
    for label, mode, dist in (
            ("strong-uniform", "strong", "uniform"),
            ("strong-zipfian", "strong", "zipfian"),
            ("timeline-zipfian", "timeline", "zipfian")):
        wl = read_workload(mode, preload_rows=500)
        wl.key_distribution = dist
        result.series[label] = [
            run_load(SpinnakerTarget(10, seed=seed), wl, t,
                     ops_per_thread=ops, warmup_ops=15) for t in ths]
    uniform = result.series["strong-uniform"]
    skewed = result.series["strong-zipfian"]
    timeline = result.series["timeline-zipfian"]
    # Skew hurts strong reads (hot leader saturates)...
    result.checks["skew_hurts_strong_reads"] = (
        skewed[-1].mean_ms > 1.2 * uniform[-1].mean_ms)
    # ...and timeline reads absorb the same skew far better.
    result.checks["timeline_absorbs_skew"] = (
        timeline[-1].mean_ms < skewed[-1].mean_ms)
    result.notes = (f"at {ths[-1]} threads: strong-uniform "
                    f"{uniform[-1].mean_ms:.1f} ms, strong-zipf "
                    f"{skewed[-1].mean_ms:.1f} ms, timeline-zipf "
                    f"{timeline[-1].mean_ms:.1f} ms")
    return result


def ablation_batching(scale: float = 1.0,
                      seed: int = 1) -> ExperimentResult:
    """Leader proposal batching: where does the write knee move?

    Fig. 16's memory-log configuration isolates the per-message CPU
    overheads that batching amortizes (no log device in the way).  Sweep
    the batch-size cap under heavy concurrency and locate the knee: the
    batcher should multiply peak throughput while an idle pipeline keeps
    flushing every write immediately (no low-load latency tax).
    """
    ths = _threads([16, 128, 512, 1024], scale)
    ops = _ops(scale, 40)
    result = ExperimentResult(
        "ablation-batching", "Proposal batching: throughput knee vs cap")
    for label, cap in (("batching-off", None), ("batch-4", 4),
                       ("batch-8", 8), ("batch-16", 16)):
        cfg = SpinnakerConfig(log_profile=DiskProfile.memory_log())
        if cap is None:
            cfg.propose_batching = False
        else:
            cfg.propose_batch_max_records = cap
        result.series[label] = [
            run_load(SpinnakerTarget(10, config=cfg, seed=seed),
                     write_workload(), t, ops_per_thread=ops,
                     warmup_ops=10) for t in ths]
    off = result.series["batching-off"]
    b8 = result.series["batch-8"]
    peak_off, peak_b8 = _max_load(off), _max_load(b8)
    # The knee only shows once offered load saturates the unbatched
    # pipeline; smoke scales (< ~80 closed-loop threads) cannot drive it
    # there, so the throughput check needs a real sweep.
    if scale >= 0.25:
        result.checks["batch8_peak_1_5x"] = peak_b8 >= 1.5 * peak_off
        # Past the sweet spot returns plateau: cap 16 must stay in the
        # batched regime (well above off), not beat cap 8.
        result.checks["cap_16_stays_in_batched_regime"] = (
            _max_load(result.series["batch-16"]) >= 0.85 * peak_b8)
    result.checks["low_load_latency_within_5pct"] = (
        b8[0].mean_ms <= off[0].mean_ms * 1.05)
    result.notes = (
        f"peak req/s: off={peak_off:.0f} "
        f"b4={_max_load(result.series['batch-4']):.0f} "
        f"b8={peak_b8:.0f} "
        f"b16={_max_load(result.series['batch-16']):.0f} "
        f"(knee shift {peak_b8 / peak_off:.2f}x); low-load ms: "
        f"off={off[0].mean_ms:.2f} b8={b8[0].mean_ms:.2f}")
    return result


# ---------------------------------------------------------------------------
# Elastic scale-out: throughput ramps as nodes join under load
# ---------------------------------------------------------------------------

def _elastic_config() -> SpinnakerConfig:
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log())
    cfg.commit_period = 0.2
    # The moved range is briefly leaderless between the map switch and
    # the child cohort's first election; clients must ride that window
    # out on retries rather than surface it as a failed operation.
    cfg.client_op_timeout = 30.0
    cfg.client_max_retries = 600
    return cfg


def _keys_in_cohort(cluster, cohort_id: int, count: int,
                    prefix: bytes) -> List[bytes]:
    keys, i = [], 0
    while len(keys) < count:
        key = prefix + b"%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def _observed_heat(cluster) -> Dict[int, float]:
    """Per-cohort load from the replicas' served-op counters — the
    planner input, measured rather than assumed."""
    heat: Dict[int, float] = {}
    for node in cluster.nodes.values():
        for cid, replica in node.replicas.items():
            heat[cid] = (heat.get(cid, 0.0) + replica.reads_served
                         + replica.writes_served)
    return heat


def _elastic_chaos_move(seed: int, crash_joiner: bool):
    """One audited split with a mid-move crash (the joining node or the
    migration leader); returns (converged, invariant violations)."""
    cluster = SpinnakerCluster(n_nodes=5, config=_elastic_config(),
                               seed=seed)
    cluster.start()
    client = cluster.client("chaos-seed")
    keys = _keys_in_cohort(cluster, 0, 10, b"chaos-")

    def writer():
        for key in keys:
            yield from client.put(key, b"v", b"x")
    proc = spawn(cluster.sim, writer())
    cluster.run_until(lambda: proc.triggered, limit=120.0,
                      what="chaos preload")
    proc.result()

    cluster.add_node("node5")
    plans = plan_join(cluster.partitioner, ["node5"],
                      heat={c.cohort_id: (100.0 if c.cohort_id == 0
                                          else 1.0)
                            for c in cluster.partitioner.cohorts})
    auditor = InvariantAuditor(cluster)
    audit_proc = spawn(cluster.sim, auditor.run(period=0.25))
    reb = Rebalancer(cluster)
    move = spawn(cluster.sim, reb.execute(plans, move_timeout=240.0))
    cluster.run_until(lambda: reb.attempts >= 1, limit=60.0,
                      what="first migration attempt")
    cluster.run(0.05)                   # land the crash mid-move
    if crash_joiner:
        cluster.crash_node("node5")
        cluster.expire_session_of("node5")
        cluster.run(1.0)
        cluster.restart_node("node5")
    else:
        killed = cluster.kill_leader(plans[0].cohort_id)
        cluster.run(1.0)
        if killed is not None:
            cluster.restart_node(killed)
    cluster.run_until(lambda: move.triggered, limit=300.0,
                      what="chaos rebalance")
    move.result()
    cluster.run(2.0)                    # settle before the final audit
    audit_proc.interrupt("done")
    auditor.final_audit()
    return reb.done, auditor.violations


def fig11_elastic(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Beyond the paper (§10 future work): live cluster growth.

    A 5-node cluster serves a sustained mixed load skewed ~70% onto
    cohort 0's range; two nodes join mid-run and the rebalancer splits
    the hot range onto them (leader-driven migration, atomic map
    switch).  Throughput is measured before, during, and after the
    moves: the post-join window must show the hot range's knee lifted
    (>= 1.4x at full scale) with zero failed strong reads.  A chaos
    coda replays the move while crashing first the joining node, then
    the migration leader — the invariant auditor must stay clean.
    """
    threads = max(4, int(round(40 * scale)))
    window = max(2.0, 10.0 * scale)
    cluster = SpinnakerCluster(n_nodes=5, config=_elastic_config(),
                               seed=seed)
    cluster.start()
    sim = cluster.sim
    rng_master = cluster.rng.fork(f"elastic-{seed}")
    value = b"x" * VALUE_SIZE
    hot_keys = _keys_in_cohort(cluster, 0, 24, b"ek-")
    cold_keys = [b"ck-%d" % i for i in range(48)]

    seeder = cluster.client("elastic-seed")

    def preload():
        for key in hot_keys + cold_keys:
            yield from seeder.put(key, b"v", value)
    proc = spawn(sim, preload())
    cluster.run_until(lambda: proc.triggered, limit=300.0,
                      what="elastic preload")
    proc.result()

    stop = {"flag": False}
    stats = {"ops": 0, "failed_strong": 0, "failed_writes": 0,
             "drained": 0}

    def load_thread(tid: int):
        client = cluster.client(f"elastic{tid}")
        rng = rng_master.stream(f"thread-{tid}")
        while not stop["flag"]:
            keys = hot_keys if rng.random() < 0.7 else cold_keys
            key = keys[rng.randrange(len(keys))]
            is_write = rng.random() < 0.5
            try:
                if is_write:
                    yield from client.put(key, b"v", value)
                else:
                    yield from client.get(key, b"v", consistent=True)
            except RequestTimeout:
                stats["failed_writes" if is_write
                      else "failed_strong"] += 1
                continue
            stats["ops"] += 1
        stats["drained"] += 1

    for tid in range(threads):
        spawn(sim, load_thread(tid), name=f"elastic-thread-{tid}")

    def measure(duration: float) -> float:
        ops0, t0 = stats["ops"], sim.now
        cluster.run(duration)
        dt = sim.now - t0
        return (stats["ops"] - ops0) / dt if dt > 0 else 0.0

    cluster.run(3.0)                    # warm caches and leader routes
    before = measure(window)

    heat = _observed_heat(cluster)
    cluster.add_node("node5")
    cluster.add_node("node6")
    plans = plan_join(cluster.partitioner, ["node5", "node6"], heat=heat)
    reb = Rebalancer(cluster)
    move_t0, move_ops0 = sim.now, stats["ops"]
    move = spawn(sim, reb.execute(plans, move_timeout=300.0))
    cluster.run_until(lambda: move.triggered, limit=900.0,
                      what="elastic rebalance")
    move.result()
    move_dt = sim.now - move_t0
    during = ((stats["ops"] - move_ops0) / move_dt if move_dt > 0
              else 0.0)

    cluster.run(1.0)                    # let the new leaders settle
    after = measure(window)

    stop["flag"] = True
    cluster.run_until(lambda: stats["drained"] == threads, limit=120.0,
                      what="elastic load drain")

    result = ExperimentResult(
        "fig11-elastic", "Elastic growth: throughput vs cluster size")
    result.series["elastic"] = [
        {"phase": "before", "nodes": 5, "throughput": round(before, 1)},
        {"phase": "during-move", "nodes": 7,
         "throughput": round(during, 1)},
        {"phase": "after", "nodes": 7, "throughput": round(after, 1)},
    ]

    part = cluster.partitioner
    result.checks["converged"] = (
        reb.done and part.version == 1 + len(plans)
        and all(cluster.leader_of(c.cohort_id) is not None
                for c in part.cohorts))
    result.checks["new_nodes_lead_split_ranges"] = all(
        cluster.leader_of(p.new_cohort_id) == p.new_members[0]
        for p in plans)
    result.checks["zero_failed_strong_reads"] = (
        stats["failed_strong"] == 0)
    if scale >= 0.9:
        # Closed-loop throughput only lifts once the hot leader was the
        # bottleneck; smoke scales cannot drive it there.
        result.checks["peak_ratio_geq_1_4"] = after >= 1.4 * before
    joiner_ok, joiner_viol = _elastic_chaos_move(seed + 101,
                                                 crash_joiner=True)
    leader_ok, leader_viol = _elastic_chaos_move(seed + 202,
                                                 crash_joiner=False)
    result.checks["chaos_joiner_crash_clean"] = (
        joiner_ok and not joiner_viol)
    result.checks["chaos_leader_crash_clean"] = (
        leader_ok and not leader_viol)
    result.notes = (
        f"{threads} threads, 70% hot-range ops; req/s "
        f"before={before:.0f} during={during:.0f} after={after:.0f} "
        f"(ratio {after / before if before else 0.0:.2f}x); "
        f"move took {move_dt:.1f}s for {len(plans)} splits; "
        f"failed strong reads={stats['failed_strong']}; chaos "
        f"violations: joiner={len(joiner_viol)} "
        f"leader={len(leader_viol)}")
    return result


# ---------------------------------------------------------------------------
# Recovery ramp: rejoin time bounded by gap size, not history length
# ---------------------------------------------------------------------------

def _recovery_config() -> SpinnakerConfig:
    """Tiny flush threshold and chunk budget: even short histories roll
    the log into many small SSTables, so rejoin exercises the chunked
    snapshot catch-up path rather than plain log replay."""
    return SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                           commit_period=0.1,
                           flush_threshold_bytes=6_000,
                           catchup_chunk_bytes=8_192)


def _measure_rejoin(seed: int, history_rounds: int,
                    gap_rounds: int) -> Dict[str, object]:
    """Crash a follower, write a fixed-size gap, restart it, and time
    the rejoin.  ``history_rounds`` of healthy traffic precede the
    crash: the 1x/10x knob that must *not* show up in the rejoin time."""
    from ..core import Role
    cluster = SpinnakerCluster(n_nodes=3, config=_recovery_config(),
                               seed=seed)
    cluster.start()
    sim = cluster.sim
    # Enough distinct keys that one round exceeds the flush threshold
    # (the memtable counts live cells, so overwrites don't accumulate).
    keys = _keys_in_cohort(cluster, 0, 30, b"fr-")
    client = cluster.client("fr-writer")

    def burst(rounds: int, tag: bytes):
        for r in range(rounds):
            for key in keys:
                yield from client.put(key, b"c",
                                      tag + b"-%d" % r + b"x" * 200)

    proc = spawn(sim, burst(history_rounds, b"hist"), name="fr-history")
    cluster.run_until(lambda: proc.triggered, limit=600.0,
                      what="fig-recovery history")
    proc.result()

    # The victim misses a fixed-size gap — identical at both histories.
    leader = cluster.leader_of(0)
    victim = next(m for m in cluster.partitioner.cohort(0).members
                  if m != leader)
    cluster.crash_node(victim)
    cluster.expire_session_of(victim)
    proc = spawn(sim, burst(gap_rounds, b"gap"), name="fr-gap")
    cluster.run_until(lambda: proc.triggered, limit=600.0,
                      what="fig-recovery gap writes")
    proc.result()

    leader_node = cluster.nodes[cluster.leader_of(0)]
    leader_records = len(leader_node.wal.write_records(0))
    leader_markers = leader_node.wal.marker_count()
    target_cmt = cluster.replica(cluster.leader_of(0), 0).committed_lsn

    t0 = sim.now
    cluster.restart_node(victim)
    replica = cluster.replica(victim, 0)
    cluster.run_until(
        lambda: (replica.role == Role.FOLLOWER
                 and replica.committed_lsn >= target_cmt),
        limit=300.0, step=0.005, what="fig-recovery rejoin")
    return {
        "history_rounds": history_rounds,
        "gap_rounds": gap_rounds,
        "rejoin_s": round(sim.now - t0, 4),
        "chunks": replica.catchup_chunks_ingested,
        "tables": replica.catchup_tables_ingested,
        "leader_wal_records": leader_records,
        "leader_wal_markers": leader_markers,
        "failures": len(cluster.all_failures()),
    }


def _measure_elastic_ramp(seed: int,
                          history_rounds: int) -> Dict[str, object]:
    """One audited fig11-elastic-style join after ``history_rounds`` of
    history: the split joiner is repaired through the same chunked
    snapshot-install path, so the move time must track the live data
    size, not the history length."""
    cluster = SpinnakerCluster(n_nodes=3, config=_recovery_config(),
                               seed=seed)
    cluster.start()
    sim = cluster.sim
    keys = _keys_in_cohort(cluster, 0, 30, b"fr-")
    client = cluster.client("fr-elastic")

    def burst():
        for r in range(history_rounds):
            for key in keys:
                yield from client.put(key, b"c",
                                      b"e-%d" % r + b"x" * 200)

    proc = spawn(sim, burst(), name="fr-elastic-history")
    cluster.run_until(lambda: proc.triggered, limit=600.0,
                      what="fig-recovery elastic history")
    proc.result()

    auditor = InvariantAuditor(cluster)
    audit = spawn(sim, auditor.run(period=0.25))
    cluster.add_node("node3")
    plans = plan_join(cluster.partitioner, ["node3"],
                      heat={c.cohort_id: (100.0 if c.cohort_id == 0
                                          else 1.0)
                            for c in cluster.partitioner.cohorts})
    reb = Rebalancer(cluster)
    t0 = sim.now
    move = spawn(sim, reb.execute(plans, move_timeout=240.0))
    cluster.run_until(lambda: move.triggered, limit=300.0,
                      what="fig-recovery elastic move")
    move.result()
    move_s = sim.now - t0
    cluster.run(1.0)
    audit.interrupt("done")
    auditor.final_audit()
    return {"history_rounds": history_rounds,
            "move_s": round(move_s, 4),
            "converged": bool(reb.done),
            "violations": len(auditor.violations)}


def fig_recovery(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Beyond the paper: crash-resumable snapshot catch-up (§6.1 plus
    the chunked-transfer extension).

    A follower misses a *fixed-size* write gap after 1x and after 10x
    total history.  Snapshot manifests bound the leader's log and marker
    list, and chunked catch-up ships only gap-covering tables, so the
    rejoin time must track the gap, not the history.  An elastic coda
    replays the fig11-elastic join ramp at both histories through the
    same snapshot-install path.
    """
    base = max(2, int(round(8 * scale)))
    gap = max(2, int(round(6 * scale)))
    result = ExperimentResult(
        "fig-recovery",
        "Rejoin time vs history length (fixed catch-up gap)")

    rows = []
    for label, rounds in (("1x", base), ("10x", 10 * base)):
        row = _measure_rejoin(seed, rounds, gap)
        row["history"] = label
        rows.append(row)
    result.series["rejoin"] = rows
    r1, r10 = rows
    result.checks["no_handler_failures"] = all(
        r["failures"] == 0 for r in rows)
    # Rejoin at 10x history must be bounded by the (identical) gap; 3x
    # plus scheduling slack is far below what a history-proportional
    # catch-up would show.
    result.checks["rejoin_bounded_by_gap"] = (
        r10["rejoin_s"] <= 3.0 * r1["rejoin_s"] + 0.5)
    # Retention keyed off the manifest horizon keeps the leader's log
    # and marker list bounded as the history grows 10x.
    result.checks["wal_records_bounded"] = (
        r10["leader_wal_records"]
        <= 3 * max(r1["leader_wal_records"], 1) + 64)
    result.checks["wal_markers_bounded"] = (
        r10["leader_wal_markers"]
        <= 3 * max(r1["leader_wal_markers"], 1) + 64)

    ramps = []
    for label, rounds in (("1x", base), ("10x", 10 * base)):
        ramp = _measure_elastic_ramp(seed + 7, rounds)
        ramp["history"] = label
        ramps.append(ramp)
    result.series["elastic-ramp"] = ramps
    e1, e10 = ramps
    result.checks["elastic_ramp_clean"] = all(
        r["converged"] and r["violations"] == 0 for r in ramps)
    result.checks["elastic_ramp_bounded"] = (
        e10["move_s"] <= 3.0 * e1["move_s"] + 0.5)
    result.notes = (
        f"gap={gap} rounds; rejoin 1x={r1['rejoin_s']:.3f}s "
        f"10x={r10['rejoin_s']:.3f}s "
        f"(ratio {r10['rejoin_s'] / r1['rejoin_s'] if r1['rejoin_s'] else 0.0:.2f}x); "
        f"leader WAL records 1x={r1['leader_wal_records']} "
        f"10x={r10['leader_wal_records']}, markers "
        f"1x={r1['leader_wal_markers']} 10x={r10['leader_wal_markers']}; "
        f"elastic move 1x={e1['move_s']:.2f}s 10x={e10['move_s']:.2f}s")
    return result


# ---------------------------------------------------------------------------
# fig-wan: multi-datacenter latency/consistency frontier
# ---------------------------------------------------------------------------

def _wan_topology(n_nodes: int, n_dcs: int = 3, wan_one_way: float = 0.025,
                  asymmetry: float = 0.25) -> Topology:
    """A realistic 3-DC WAN: ~25 ms one-way base propagation with a
    deterministic per-direction skew (routes are asymmetric), nodes
    placed round-robin across datacenters."""
    delays = {}
    for i in range(n_dcs):
        for j in range(n_dcs):
            if i == j:
                continue
            skew = ((3 * i + j) % 4) / 3.0
            delays[(f"dc{i}", f"dc{j}")] = (
                wan_one_way * (1.0 + asymmetry * skew))
    topo = Topology(wan_one_way=wan_one_way, wan_delays=delays,
                    preferred_dc="dc0")
    for i in range(n_nodes):
        topo.place(f"node{i}", f"dc{i % n_dcs}")
    return topo


def _wan_cluster(seed: int, placement: str, n_nodes: int = 9):
    topo = _wan_topology(n_nodes)
    cfg = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                          commit_period=0.25)
    cluster = SpinnakerCluster(n_nodes=n_nodes, config=cfg, seed=seed,
                               topology=topo, placement=placement)
    cluster.start()
    return cluster, topo


def _wan_keys(cluster, topo: Topology, dc: str, count: int,
              prefix: bytes = b"wan") -> List[bytes]:
    """Deterministic keys whose cohort leader currently sits in ``dc``
    (so client → leader is a LAN hop and the measured latency isolates
    the replication path)."""
    keys: List[bytes] = []
    i = 0
    while len(keys) < count and i < 4096:
        key = b"%s-%d" % (prefix, i)
        cohort = cluster.partitioner.cohort_for_key(key_of(key))
        leader = cluster.leader_of(cohort.cohort_id)
        if leader is not None and topo.dc_of(leader) == dc:
            keys.append(key)
        i += 1
    return keys


def _wan_client(cluster, topo: Topology, name: str, dc: str):
    topo.place(name, dc)
    return cluster.client(name)


def _op_loop(cluster, client, op, keys: List[bytes], count: int,
             pace: float, hist: Histogram, failures: List[int]):
    for i in range(count):
        start = cluster.sim.now
        try:
            yield from op(client, keys[i % len(keys)], i)
        except DatastoreError:
            failures[0] += 1
        else:
            hist.add(cluster.sim.now - start)
        yield timeout(cluster.sim, pace)


def _timed_phase(cluster, client, op, keys: List[bytes], count: int,
                 pace: float):
    """Drive ``count`` paced ops to completion; (Histogram, failures)."""
    hist = Histogram()
    failures = [0]
    proc = spawn(cluster.sim,
                 _op_loop(cluster, client, op, keys, count, pace,
                          hist, failures),
                 name=f"wan-ops-{client.name}")
    cluster.run_until(lambda: proc.triggered,
                      limit=count * (pace + 5.0) + 30.0,
                      what=f"wan ops via {client.name}")
    return hist, failures[0]


def _lat_row(hist: Histogram, failures: int, **extra) -> dict:
    row = {
        "count": hist.count,
        "mean_ms": round(hist.mean() * 1e3, 3) if hist.count else 0.0,
        "p50_ms": (round(hist.percentile(50) * 1e3, 3)
                   if hist.count else 0.0),
        "p95_ms": (round(hist.percentile(95) * 1e3, 3)
                   if hist.count else 0.0),
        "failures": failures,
    }
    row.update(extra)
    return row


def fig_wan(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Beyond the paper: the multi-datacenter latency/consistency
    frontier (3 DCs, ~25 ms one-way WAN links, asymmetric routes).

    Strong writes whose replicas are spread one-per-DC pay at least one
    WAN round trip per commit (the quorum ack must cross a WAN link);
    pinning the quorum's majority inside the client's datacenter
    ("local" placement) buys LAN-latency strong writes at the cost of a
    whole-DC failure forcing a cross-DC failover; timeline reads served
    by the client's nearest replica stay well under one WAN RTT from a
    remote DC.  A chaos coda then (a) degrades a WAN link by less than
    the lease margin — sessions must not flap — and (b) partitions a
    whole datacenter — writes keep committing on the surviving
    majority — under invariant audit and a strong-history check.
    """
    n_ops = max(10, int(round(60 * scale)))
    n_keys = max(4, int(round(12 * scale)))
    pace = 0.05
    result = ExperimentResult(
        "fig-wan", "WAN latency/consistency frontier (3 datacenters)")

    def put(client, key, i):
        return (yield from client.put(key, b"c", b"w%d" % i))

    def timeline_get(client, key, i):
        return (yield from client.get(key, b"c", consistent=False))

    # -- cross-DC quorum writes + timeline reads (spread placement) -----
    cluster, topo = _wan_cluster(seed, "spread")
    wan_floor_ms = topo.min_wan_rtt() * 1e3
    keys = _wan_keys(cluster, topo, "dc0", n_keys)
    writer = _wan_client(cluster, topo, "wan-w0", "dc0")
    cross_hist, cross_fail = _timed_phase(
        cluster, writer, put, keys, n_ops, pace)
    cluster.run(1.0)   # let commits propagate to the remote followers
    reader = _wan_client(cluster, topo, "wan-r1", "dc1")
    tl_hist, tl_fail = _timed_phase(
        cluster, reader, timeline_get, keys, n_ops, pace)
    cross_row = _lat_row(cross_hist, cross_fail,
                         placement="spread", client_dc="dc0")
    tl_row = _lat_row(tl_hist, tl_fail,
                      placement="spread", client_dc="dc1")
    result.series["cross-dc-quorum-writes"] = [cross_row]
    result.series["timeline-reads"] = [tl_row]

    # -- chaos coda on the spread cluster -------------------------------
    sim = cluster.sim
    recorder = HistoryRecorder()
    auditor = InvariantAuditor(cluster)
    coda_ops = int(round(4.5 / pace))
    spawn(sim, auditor.run(0.25, until=sim.now + 12.0), name="wan-auditor")

    coda_w = _wan_client(cluster, topo, "wan-coda-w", "dc0")
    coda_r = _wan_client(cluster, topo, "wan-coda-r", "dc0")
    # Fresh keys: the recorded history must contain every write whose
    # version a recorded read can observe, or the checker rightly
    # flags versions appearing from nowhere.
    coda_keys = _wan_keys(cluster, topo, "dc0", n_keys, prefix=b"coda")

    def rec_put(client, key, i):
        start = sim.now
        try:
            res = yield from client.put(key, b"c", b"x%d" % i)
        except DatastoreError:
            recorder.record_write(key, start, sim.now, 0, ok=False)
            raise
        recorder.record_write(key, start, sim.now, res.version)

    def rec_get(client, key, i):
        start = sim.now
        got = yield from client.get(key, b"c", consistent=True)
        recorder.record_read(key, start, sim.now, got.version)

    w_hist, r_hist = Histogram(), Histogram()
    w_fail, r_fail = [0], [0]
    wproc = spawn(sim, _op_loop(cluster, coda_w, rec_put, coda_keys,
                                coda_ops, pace, w_hist, w_fail),
                  name="wan-coda-w")
    rproc = spawn(sim, _op_loop(cluster, coda_r, rec_get, coda_keys,
                                coda_ops, pace, r_hist, r_fail),
                  name="wan-coda-r")

    losses_before = sum(n.session_losses
                        for n in cluster.nodes.values())
    # (a) a merely-slow WAN link: +10 ms one-way, far below the lease
    # margin — heartbeats must ride it out without a session flap
    log = arm_schedule(cluster, [FaultEvent(
        at=0.1, kind="wan-degrade", duration=1.5, a="dc0", b="dc1",
        extra=0.010)])
    cluster.run(2.0)
    degrade_losses = (sum(n.session_losses
                          for n in cluster.nodes.values())
                      - losses_before)
    # (b) a whole datacenter drops off the map; the measured cohorts
    # (leader dc0, follower dc1) keep their commit quorum throughout
    arm_schedule(cluster, [FaultEvent(
        at=0.2, kind="partition-dc", duration=1.5, a="dc2")], log)
    cluster.run_until(lambda: wproc.triggered and rproc.triggered,
                      limit=90.0, what="wan chaos coda")
    cluster.run_until(cluster.is_ready, limit=60.0,
                      what="post-coda recovery")
    cluster.run(1.0)
    auditor.final_audit()
    history_violations = check_strong_history(recorder)
    result.series["chaos-coda"] = [{
        "writes_acked": w_hist.count,
        "write_failures": w_fail[0],
        "strong_reads": r_hist.count,
        "read_failures": r_fail[0],
        "session_flaps_under_degrade": degrade_losses,
        "invariant_violations": len(auditor.violations),
        "history_violations": len(history_violations),
        "faults": len(log),
    }]

    # -- local-quorum writes (majority pinned in the client's DC) -------
    cluster2, topo2 = _wan_cluster(seed + 1, "local")
    keys2 = _wan_keys(cluster2, topo2, "dc0", n_keys)
    writer2 = _wan_client(cluster2, topo2, "wan-w0", "dc0")
    local_hist, local_fail = _timed_phase(
        cluster2, writer2, put, keys2, n_ops, pace)
    local_row = _lat_row(local_hist, local_fail,
                         placement="local", client_dc="dc0")
    result.series["local-quorum-writes"] = [local_row]

    result.checks["cross_dc_writes_pay_wan_rtt"] = (
        cross_hist.count > 0 and cross_row["p50_ms"] >= wan_floor_ms)
    result.checks["local_writes_below_wan_rtt"] = (
        local_hist.count > 0 and local_row["p95_ms"] < wan_floor_ms)
    result.checks["timeline_reads_below_wan_rtt"] = (
        tl_hist.count > 0 and tl_row["p95_ms"] < wan_floor_ms)
    result.checks["measure_ops_clean"] = (
        cross_fail == 0 and tl_fail == 0 and local_fail == 0)
    result.checks["no_lease_flap_under_degrade"] = degrade_losses == 0
    result.checks["writes_survive_dc_partition"] = (
        w_fail[0] == 0 and w_hist.count > 0)
    result.checks["auditor_clean"] = not auditor.violations
    result.checks["history_clean"] = not history_violations
    result.notes = (
        f"min WAN RTT {wan_floor_ms:.1f} ms; strong writes "
        f"cross-DC p50={cross_row['p50_ms']:.1f} ms vs local-quorum "
        f"p50={local_row['p50_ms']:.1f} ms; timeline reads from dc1 "
        f"p95={tl_row['p95_ms']:.1f} ms; coda: {w_hist.count} writes "
        f"through WAN degrade + dc2 partition, "
        f"{degrade_losses} session flaps")
    return result


def fig_tune(scale: float = 1.0, seed: int = 1) -> ExperimentResult:
    """Self-tuned knobs vs hand-tuned defaults (repro.tune).

    Two arms.  The *default arm* runs the offline tuner from the
    hand-tuned defaults on each flat hardware profile and reports the
    tuned-vs-baseline deltas — where hand-tuning was already optimal the
    honest result is parity, and the ledger still has to show a
    converging multi-trial search.  The *recovery arm* starts the same
    search from a deliberately detuned config (batching and group
    commit off, commit broadcasts stalled) and must climb back to
    within noise of the hand-tuned optimum — evidence the search, not
    the starting point, does the work.
    """
    from ..tune.profiles import DETUNED_START
    from ..tune.search import TuneResult, tune

    result = ExperimentResult(
        "fig-tune", "Self-tuned knobs vs hand-tuned defaults")
    profiles = ("sata", "ssd", "mem") if scale >= 0.25 else ("sata",)
    # Per-trial cost already scales with ``scale``; the budget does not,
    # so the search is never truncated mid-pass at small report scales.
    budget = 48

    def ledger_ok(res: TuneResult) -> bool:
        best_seen = res.trials[0].best_so_far
        for trial in res.trials:
            if trial.best_so_far > best_seen + 1e-9:
                return False
            best_seen = trial.best_so_far
        return (len(res.trials) >= 2
                and res.best_score <= res.baseline_score + 1e-9)

    runs: Dict[str, TuneResult] = {}
    rows = []
    for name in profiles:
        res = tune(name, seed=seed, max_trials=budget, scale=scale)
        runs[name] = res
        base = res.baseline.eval.metrics
        best = res.best_trial.eval.metrics
        rows.append({
            "profile": name,
            "baseline_p50_ms": base["p50_ms"],
            "tuned_p50_ms": best["p50_ms"],
            "p50_delta_pct": round(
                100.0 * (best["p50_ms"] - base["p50_ms"])
                / base["p50_ms"], 2),
            "baseline_rps": round(base["throughput"], 1),
            "tuned_rps": round(best["throughput"], 1),
            "rps_delta_pct": round(
                100.0 * (best["throughput"] - base["throughput"])
                / base["throughput"], 2),
            "trials": len(res.trials),
            "knobs_adopted": len(res.best_values),
            "converged": res.converged,
        })
    result.series["tuned-vs-hand-tuned"] = rows

    # recovery arm: always SATA — the profile where the detuned config
    # hurts most (no batching + no group commit on a seeking disk)
    rec = tune("sata", seed=seed, max_trials=budget, scale=scale,
               start=DETUNED_START)
    hand = runs["sata"].baseline.eval.metrics
    det = rec.baseline.eval.metrics
    recm = rec.best_trial.eval.metrics
    result.series["recovery"] = [{
        "profile": "sata",
        "detuned_p50_ms": det["p50_ms"],
        "recovered_p50_ms": recm["p50_ms"],
        "hand_tuned_p50_ms": hand["p50_ms"],
        "detuned_rps": round(det["throughput"], 1),
        "recovered_rps": round(recm["throughput"], 1),
        "hand_tuned_rps": round(hand["throughput"], 1),
        "trials": len(rec.trials),
        "converged": rec.converged,
    }]

    deltas = [(r["p50_delta_pct"], r["rps_delta_pct"]) for r in rows]
    result.checks["ledger_converges_monotone"] = all(
        ledger_ok(r) for r in list(runs.values()) + [rec])
    result.checks["tuned_not_worse"] = all(
        r["tuned_p50_ms"] <= r["baseline_p50_ms"] * 1.03
        and r["tuned_rps"] >= r["baseline_rps"] * 0.97 for r in rows)
    result.checks["improves_or_parity"] = (
        any(dp <= -5.0 or dt >= 5.0 for dp, dt in deltas)
        or all(abs(dp) <= 2.5 and abs(dt) <= 2.5 for dp, dt in deltas))
    # recovery quality needs enough load for the detuning to bite;
    # below that the arm still exercises the code path
    if scale >= 0.25:
        result.checks["search_converged"] = all(
            r.converged for r in runs.values())
        result.checks["recovery_reaches_hand_tuned"] = (
            recm["p50_ms"] <= hand["p50_ms"] * 1.10
            and recm["throughput"] >= hand["throughput"] * 0.90)
        result.checks["recovery_search_pays"] = (
            rec.best_score < rec.baseline_score - 1e-6)
    best_row = min(rows, key=lambda r: r["p50_delta_pct"])
    result.notes = (
        f"budget {budget} trials/profile (seed {seed}); best default-arm "
        f"delta: {best_row['profile']} p50 "
        f"{best_row['p50_delta_pct']:+.1f}%, throughput "
        f"{best_row['rps_delta_pct']:+.1f}%; recovery arm (sata): "
        f"p50 {det['p50_ms']:.2f} -> {recm['p50_ms']:.2f} ms vs "
        f"hand-tuned {hand['p50_ms']:.2f} ms in {len(rec.trials)} trials")
    return result


#: registry used by the CLI report and the benchmark suite
ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig8": fig8_read_latency,
    "fig9": fig9_write_latency,
    "table1": table1_recovery,
    "fig11": fig11_scaling,
    "fig11-elastic": fig11_elastic,
    "fig-recovery": fig_recovery,
    "fig-wan": fig_wan,
    "fig12": fig12_mixed,
    "fig12-scale": fig12_scale,
    "fig13": fig13_ssd,
    "fig14": fig14_conditional_put,
    "fig15": fig15_weak_writes,
    "fig16": fig16_memory_log,
    "ablation-parallel": ablation_parallel_propose,
    "ablation-groupcommit": ablation_group_commit,
    "ablation-piggyback": ablation_piggyback_commits,
    "ablation-skew": ablation_skewed_reads,
    "ablation-batching": ablation_batching,
    "fig-tune": fig_tune,
}
