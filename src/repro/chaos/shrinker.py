"""Deterministic shrinking of failing fault schedules.

Because a chaos run is a pure function of ``(seed, config, schedule)``,
a schedule that violates an invariant can be minimized offline: replay
subsets until no event can be removed without the violation vanishing
(the classic ddmin / delta-debugging loop).  The result is the shortest
fault sequence that still breaks the cluster — usually two or three
events instead of dozens — printed as a ready-to-paste regression test.

ddmin state machine (granularity ``g``, current schedule ``S``)::

    START (g=2) ──▶ TRY: drop one of g chunks of S, replay the rest
      TRY ──still fails──▶ S := subset, g := max(g-1, 2), restart TRY
      TRY ──all chunks needed, chunk > 1──▶ g := min(|S|, 2g), TRY
      TRY ──all chunks needed, chunk == 1──▶ DONE (1-minimal)
      any ──replay budget exhausted──▶ DONE (best-so-far)

Invariants:

- **Failure is preserved.** ``fails(S)`` holds on entry and after every
  accepted reduction; the returned schedule always still reproduces.
- **Replays are pure.** Every candidate runs in a fresh simulator from
  the same ``(seed, config)``; no state leaks between replays, so the
  shrink itself is deterministic and its output reproducible.
- **Budgeted.** At most ``max_runs`` cluster replays; exhaustion returns
  the best reduction so far instead of looping on a stubborn schedule.

Failure cases:

- *Flaky predicate*: impossible here by construction — a violation is a
  function of the schedule, so "fails once, passes on retry" cannot
  happen; if it ever does, the simulator's determinism is the bug (see
  ``repro lint``).
- *Interdependent faults*: ddmin yields a 1-minimal (no single event
  removable), not a global minimum; a pair of mutually-required faults
  survives together, which is exactly what the regression test should
  capture.
- *Original run passes*: nothing to shrink; ``ShrinkResult.failed`` is
  False and the schedule is returned untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, List, Optional, Sequence

from .nemesis import ChaosConfig, ChaosReport, FaultEvent, run_chaos

__all__ = ["ddmin", "shrink_run", "ShrinkResult",
           "format_regression_test"]


def ddmin(items: Sequence, fails: Callable[[List], bool],
          max_runs: int = 64) -> List:
    """Minimize ``items`` such that ``fails(subset)`` stays true.

    ``fails(list(items))`` must already be true.  Classic delta
    debugging: try dropping ever-finer chunks, restarting the pass at
    the current granularity whenever a removal sticks.  ``max_runs``
    bounds the number of ``fails`` evaluations (each one is a whole
    simulated cluster run), returning the best reduction so far.
    """
    current = list(items)
    runs = 0
    granularity = 2
    while len(current) >= 1 and granularity <= max(len(current), 2):
        chunk = max(1, (len(current) + granularity - 1) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            runs += 1
            if runs > max_runs:
                return current
            if fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(current), granularity * 2)
    return current


@dataclass
class ShrinkResult:
    """Outcome of a shrink session."""

    failed: bool                      # did the original run fail at all?
    seed: int
    config: ChaosConfig
    original: List[FaultEvent]
    minimized: List[FaultEvent]
    report: ChaosReport               # report of the minimized replay
    replays: int                      # cluster runs spent shrinking


def shrink_run(seed: int, config: Optional[ChaosConfig] = None,
               schedule: Optional[List[FaultEvent]] = None,
               max_runs: int = 64) -> ShrinkResult:
    """Run ``(seed, config)`` (or an explicit schedule); if an invariant
    is violated, minimize the schedule to the shortest failing fault
    sequence."""
    config = config or ChaosConfig()
    baseline = run_chaos(seed, config, schedule=schedule)
    original = list(baseline.schedule)
    if baseline.ok:
        return ShrinkResult(failed=False, seed=seed, config=config,
                            original=original, minimized=original,
                            report=baseline, replays=1)
    replays = [1]

    def fails(candidate: List[FaultEvent]) -> bool:
        replays[0] += 1
        return not run_chaos(seed, config, schedule=candidate).ok

    minimized = ddmin(original, fails, max_runs=max_runs)
    final = run_chaos(seed, config, schedule=minimized)
    replays[0] += 1
    return ShrinkResult(failed=True, seed=seed, config=config,
                        original=original, minimized=minimized,
                        report=final, replays=replays[0])


# ---------------------------------------------------------------------------
# Regression-test emission
# ---------------------------------------------------------------------------

def _format_event(ev: FaultEvent, indent: str = "        ") -> str:
    """A FaultEvent constructor call listing only non-default fields."""
    parts = []
    for f in fields(FaultEvent):
        value = getattr(ev, f.name)
        if f.name != "at" and value == f.default:
            continue
        parts.append(f"{f.name}={value!r}")
    return f"{indent}FaultEvent({', '.join(parts)}),"


def format_regression_test(result: ShrinkResult) -> str:
    """A ready-to-paste pytest function replaying the shrunken
    schedule.  It fails today (the violation reproduces) and passes
    once the underlying bug is fixed."""
    cfg = result.config
    lines = [
        f"def test_chaos_regression_seed{result.seed}():",
        f'    """Shrunken from `python -m repro chaos '
        f"--seed {result.seed} --duration {cfg.duration:g} "
        f'--nodes {cfg.n_nodes}` ({len(result.original)} -> '
        f'{len(result.minimized)} events)."""',
        "    from repro.chaos import (ChaosConfig, FaultEvent,",
        "                             replay_schedule)",
        "    schedule = [",
    ]
    lines += [_format_event(ev) for ev in result.minimized]
    lines += [
        "    ]",
        f"    config = ChaosConfig(n_nodes={cfg.n_nodes}, "
        f"duration={cfg.duration!r},",
        f"                         mean_fault_gap={cfg.mean_fault_gap!r},"
        f" mean_repair={cfg.mean_repair!r})",
        f"    report = replay_schedule(seed={result.seed}, "
        f"config=config, schedule=schedule)",
        "    assert report.ok, report.format()",
    ]
    return "\n".join(lines)
