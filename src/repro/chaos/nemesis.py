"""The nemesis: seeded random fault schedules against a live cluster.

A chaos run has four deterministic ingredients, all derived from
``(seed, config)``:

1. a **fault schedule** — a list of :class:`FaultEvent` drawn from a
   dedicated RNG stream with MTTF/MTTR budgets (crash-restarts of
   leaders and named nodes, permanent disk loss, symmetric and one-way
   partitions, message-drop bursts, latency spikes);
2. a **workload** — writer and reader processes streaming paced
   operations into a couple of cohorts while recording a client-observed
   history and the set of acknowledged writes;
3. an **invariant auditor** sampling the cluster during the storm
   (:mod:`~repro.chaos.invariants`);
4. a **post-storm audit** — heal everything, restart the dead, wait for
   leaders, then check log-prefix agreement, read back every
   acknowledged write, and run the strong-history checker.

Faults that take something down are *paired* with their repair inside a
single :class:`FaultEvent` (crash + restart, block + heal) so the
shrinker can remove a fault without stranding the cluster in a degraded
state forever.

Replaying the same ``(seed, config)`` — or an explicit schedule via
:func:`replay_schedule` — reproduces the run event-for-event, which is
what makes shrinking and regression tests possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import SpinnakerCluster, SpinnakerConfig
from ..core.checker import HistoryRecorder, check_strong_history
from ..core.datamodel import DatastoreError
from ..core.partition import key_of
from ..sim.disk import DiskProfile
from ..sim.events import SimulationError
from ..sim.process import spawn, timeout
from ..sim.rng import RngRegistry
from .invariants import InvariantAuditor, InvariantViolation

__all__ = ["FaultEvent", "ChaosConfig", "ChaosReport", "arm_schedule",
           "generate_schedule", "run_chaos", "replay_schedule"]

#: Fault kinds the nemesis knows how to inject.  The first seven are
#: topology-oblivious; the DC-level kinds (whole-datacenter partition,
#: WAN-link degradation) fire only on clusters built with a
#: :class:`~repro.sim.topology.Topology` (``ChaosConfig.n_dcs > 1``).
FAULT_KINDS = ("crash-leader", "crash-node", "lose-disk", "partition",
               "partition-oneway", "drop-burst", "latency-spike",
               "partition-dc", "wan-degrade")
#: the topology-oblivious prefix of FAULT_KINDS (flat-network schedules
#: draw only from these, keeping pre-topology seeds bit-identical)
_FLAT_KINDS = FAULT_KINDS[:7]


@dataclass(frozen=True)
class FaultEvent:
    """One nemesis action, with its built-in repair.

    ``at`` is relative to storm start.  Durable-outage kinds
    (``crash-leader``, ``crash-node``) restart the victim ``duration``
    seconds later; link faults (``partition``, ``partition-oneway``,
    ``drop-burst``, ``latency-spike``) are undone after ``duration``;
    ``lose-disk`` reboots immediately with empty media (the repair *is*
    the catch-up protocol).
    """

    at: float
    kind: str
    duration: float = 0.0
    cohort: int = -1          # crash-leader: which cohort's leader
    node: str = ""            # crash-node / lose-disk victim
    a: str = ""               # link faults: ordered endpoints;
    b: str = ""               # DC faults: datacenter names
    rate: float = 0.0         # drop-burst probability
    extra: float = 0.0        # latency-spike / wan-degrade extra delay (s)
    fast_detect: bool = True  # expire the victim's session immediately

    def describe(self) -> str:
        if self.kind == "crash-leader":
            detect = "fast" if self.fast_detect else "slow"
            return (f"crash-leader cohort={self.cohort} "
                    f"for {self.duration:.2f}s ({detect}-detect)")
        if self.kind == "crash-node":
            detect = "fast" if self.fast_detect else "slow"
            return (f"crash-node {self.node} "
                    f"for {self.duration:.2f}s ({detect}-detect)")
        if self.kind == "lose-disk":
            return f"lose-disk {self.node}"
        if self.kind == "partition":
            return f"partition {self.a}|{self.b} for {self.duration:.2f}s"
        if self.kind == "partition-oneway":
            return (f"partition {self.a}>{self.b} "
                    f"for {self.duration:.2f}s")
        if self.kind == "drop-burst":
            return (f"drop-burst {self.a}~{self.b} p={self.rate:.2f} "
                    f"for {self.duration:.2f}s")
        if self.kind == "latency-spike":
            return (f"latency-spike +{self.extra * 1e3:.1f}ms "
                    f"for {self.duration:.2f}s")
        if self.kind == "partition-dc":
            return f"partition-dc {self.a} for {self.duration:.2f}s"
        if self.kind == "wan-degrade":
            return (f"wan-degrade {self.a}>{self.b} "
                    f"+{self.extra * 1e3:.1f}ms for {self.duration:.2f}s")
        return f"{self.kind}?"


@dataclass
class ChaosConfig:
    """Knobs for one chaos run.  Everything that shapes the schedule,
    the workload, or the cluster build lives here so that ``(seed,
    config)`` fully determines the run."""

    n_nodes: int = 5
    #: storm window in simulated seconds
    duration: float = 30.0
    #: mean gap between injected faults (the MTTF budget)
    mean_fault_gap: float = 2.0
    #: mean outage length (the MTTR budget), clamped to ``max_repair``
    mean_repair: float = 1.5
    max_repair: float = 4.0
    #: post-storm window for recovery + final audit
    settle: float = 10.0
    #: at most this many permanent disk losses per run (each one burns a
    #: replica's entire history; more than one risks legitimately
    #: exceeding the paper's f=1 fault budget)
    max_disk_losses: int = 1
    #: relative weights of the topology-oblivious fault kinds, in
    #: FAULT_KINDS order (the DC-level kinds have their own knob)
    weights: Tuple[float, ...] = (3.0, 3.0, 0.6, 1.5, 1.0, 1.2, 1.2)
    # -- topology (multi-datacenter runs) -------------------------------
    #: build the cluster across this many datacenters (1 = flat network,
    #: bit-identical to pre-topology schedules); nodes are placed
    #: round-robin (node i -> dc{i % n_dcs}) and replicas spread so
    #: every cohort spans as many DCs as the replication factor allows
    n_dcs: int = 1
    #: base one-way WAN propagation delay between datacenters
    wan_one_way: float = 0.02
    #: fractional per-direction skew applied deterministically per
    #: ordered DC pair (asymmetric routes)
    wan_asymmetry: float = 0.25
    #: relative weights of (partition-dc, wan-degrade), appended to
    #: ``weights`` when ``n_dcs > 1``
    dc_fault_weights: Tuple[float, float] = (1.5, 1.0)
    # -- workload -------------------------------------------------------
    writers: int = 2
    readers: int = 2
    cohorts_used: int = 2
    keys_per_cohort: int = 10
    write_pace: float = 0.06
    read_pace: float = 0.045
    audit_period: float = 0.25
    # -- cluster --------------------------------------------------------
    commit_period: float = 0.3
    client_op_timeout: float = 6.0

    def spinnaker_config(self) -> SpinnakerConfig:
        return SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                               commit_period=self.commit_period,
                               client_op_timeout=self.client_op_timeout)

    def dc_names(self) -> List[str]:
        return [f"dc{i}" for i in range(self.n_dcs)]

    def topology(self):
        """The cluster topology this config describes, or None for a
        flat (single-DC) run.  Per-direction WAN delays are skewed
        deterministically from the pair's indices, so the same config
        always produces the same asymmetric delay matrix."""
        if self.n_dcs <= 1:
            return None
        from ..sim.topology import Topology
        delays = {}
        for i in range(self.n_dcs):
            for j in range(self.n_dcs):
                if i == j:
                    continue
                skew = ((3 * i + j) % 4) / 3.0   # 0, 1/3, 2/3, 1
                delays[(f"dc{i}", f"dc{j}")] = (
                    self.wan_one_way * (1.0 + self.wan_asymmetry * skew))
        topo = Topology(wan_one_way=self.wan_one_way, wan_delays=delays,
                        preferred_dc="dc0")
        for i in range(self.n_nodes):
            topo.place(f"node{i}", f"dc{i % self.n_dcs}")
        return topo

    def placement(self) -> str:
        """Replica-placement policy for the cluster build: spread
        cohorts across datacenters whenever there is more than one."""
        return "spread" if self.n_dcs > 1 else "ring"


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------

def generate_schedule(seed: int, config: ChaosConfig) -> List[FaultEvent]:
    """The pure function from ``(seed, config)`` to a fault schedule."""
    rng = RngRegistry(seed).stream("nemesis")
    names = [f"node{i}" for i in range(config.n_nodes)]
    events: List[FaultEvent] = []
    disk_losses = 0
    # Windows during which a node is (or may be) down or unreachable;
    # a disk loss must not overlap one, or the cluster can legitimately
    # drop below the paper's f=1 budget and lose acknowledged data.
    outage_windows: List[Tuple[float, float]] = []
    disk_margin = 6.0   # catch-up headroom around a disk loss

    def overlaps_outage(lo: float, hi: float) -> bool:
        return any(lo < w_hi and w_lo < hi for w_lo, w_hi in outage_windows)

    kinds: Tuple[str, ...] = _FLAT_KINDS
    weights: Tuple[float, ...] = tuple(config.weights)
    if config.n_dcs > 1:
        # DC-level kinds join the pool only for placed clusters; flat
        # configs draw from the same (kinds, weights) as always, so
        # pre-topology seeds reproduce their schedules bit-identically.
        kinds = kinds + FAULT_KINDS[7:]
        weights = weights + tuple(config.dc_fault_weights)
    t = 0.5 + rng.random()
    while t < config.duration:
        kind = rng.choices(kinds, weights=weights)[0]
        dur = min(config.max_repair,
                  0.2 + rng.expovariate(1.0 / config.mean_repair))
        if kind == "lose-disk":
            if (disk_losses >= config.max_disk_losses
                    or t > config.duration * 0.7
                    or overlaps_outage(t - disk_margin, t + disk_margin)):
                kind = "crash-node"   # stay inside the fault budget
        if kind == "lose-disk":
            disk_losses += 1
            outage_windows.append((t - disk_margin, t + disk_margin))
            events.append(FaultEvent(at=t, kind=kind,
                                     node=rng.choice(names)))
        elif kind == "crash-leader":
            outage_windows.append((t, t + dur))
            events.append(FaultEvent(
                at=t, kind=kind, duration=dur,
                cohort=rng.randrange(config.n_nodes),
                fast_detect=rng.random() < 0.7))
        elif kind == "crash-node":
            outage_windows.append((t, t + dur))
            events.append(FaultEvent(
                at=t, kind=kind, duration=dur, node=rng.choice(names),
                fast_detect=rng.random() < 0.7))
        elif kind in ("partition", "partition-oneway"):
            a, b = rng.sample(names, 2)
            outage_windows.append((t, t + dur))
            events.append(FaultEvent(at=t, kind=kind, duration=dur,
                                     a=a, b=b))
        elif kind == "drop-burst":
            a, b = rng.sample(names, 2)
            events.append(FaultEvent(at=t, kind=kind, duration=dur,
                                     a=a, b=b,
                                     rate=0.2 + 0.7 * rng.random()))
        elif kind == "latency-spike":
            events.append(FaultEvent(at=t, kind=kind, duration=dur,
                                     extra=0.003 + 0.04 * rng.random()))
        elif kind == "partition-dc":
            dc = rng.choice(config.dc_names())
            outage_windows.append((t, t + dur))
            events.append(FaultEvent(at=t, kind=kind, duration=dur, a=dc))
        elif kind == "wan-degrade":
            dc_a, dc_b = rng.sample(config.dc_names(), 2)
            events.append(FaultEvent(at=t, kind=kind, duration=dur,
                                     a=dc_a, b=dc_b,
                                     extra=0.005 + 0.03 * rng.random()))
        t += 0.15 + rng.expovariate(1.0 / config.mean_fault_gap)
    return events


# ---------------------------------------------------------------------------
# Applying a schedule to a live cluster
# ---------------------------------------------------------------------------

class _Applier:
    """Plays a fault schedule against a cluster, logging what actually
    happened (the leader targeted by a ``crash-leader`` is only known at
    fire time)."""

    def __init__(self, cluster: SpinnakerCluster,
                 schedule: List[FaultEvent], log: List[str]):
        self.cluster = cluster
        self.schedule = schedule
        self.log = log

    def arm(self) -> None:
        base = self.cluster.sim.now
        for ev in self.schedule:
            self.cluster.sim.call_at(base + ev.at,
                                     lambda e=ev: self._fire(e))

    def _note(self, text: str) -> None:
        self.log.append(f"[t={self.cluster.sim.now:9.4f}] {text}")

    def _crash(self, name: str, duration: float,
               fast_detect: bool, why: str) -> None:
        cluster = self.cluster
        node = cluster.nodes[name]
        if not node.alive:
            self._note(f"{why}: {name} already down, skipped")
            return
        session = node.zk.session if node.zk else None
        node.crash()
        if fast_detect and session is not None:
            cluster.coord.expire_session_now(session)
        self._note(f"{why}: crashed {name} for {duration:.2f}s "
                   f"({'fast' if fast_detect else 'slow'}-detect)")
        cluster.sim.schedule(duration, lambda: self._restart(name))

    def _restart(self, name: str) -> None:
        node = self.cluster.nodes[name]
        if node.alive:
            self._note(f"restart {name}: already up")
            return
        node.restart()
        self._note(f"restarted {name}")

    def _fire(self, ev: FaultEvent) -> None:
        cluster, net = self.cluster, self.cluster.network
        if ev.kind == "crash-leader":
            leader = cluster.leader_of(ev.cohort)
            if leader is None:
                self._note(f"crash-leader cohort={ev.cohort}: "
                           f"no open leader, skipped")
                return
            self._crash(leader, ev.duration, ev.fast_detect,
                        f"crash-leader cohort={ev.cohort}")
        elif ev.kind == "crash-node":
            self._crash(ev.node, ev.duration, ev.fast_detect,
                        "crash-node")
        elif ev.kind == "lose-disk":
            node = cluster.nodes[ev.node]
            if not node.alive:
                self._note(f"lose-disk: {ev.node} already down, skipped")
                return
            session = node.zk.session if node.zk else None
            node.lose_disk()
            if session is not None:
                cluster.coord.expire_session_now(session)
            self._note(f"lose-disk: wiped {ev.node}, rebooting empty")
        elif ev.kind in ("partition", "partition-oneway"):
            symmetric = ev.kind == "partition"
            net.block(ev.a, ev.b, symmetric=symmetric)
            arrow = "|" if symmetric else ">"
            self._note(f"partition {ev.a}{arrow}{ev.b} "
                       f"for {ev.duration:.2f}s")
            # Heal exactly what we blocked: a one-way block heals one
            # way, so an overlapping reverse block keeps its own life.
            cluster.sim.schedule(
                ev.duration,
                lambda: self._heal(ev.a, ev.b, arrow, symmetric))
        elif ev.kind == "drop-burst":
            net.set_drop_rate(ev.a, ev.b, ev.rate)
            self._note(f"drop-burst {ev.a}~{ev.b} p={ev.rate:.2f} "
                       f"for {ev.duration:.2f}s")
            cluster.sim.schedule(
                ev.duration, lambda: self._end_drop(ev.a, ev.b))
        elif ev.kind == "latency-spike":
            net.extra_delay += ev.extra
            self._note(f"latency-spike +{ev.extra * 1e3:.1f}ms "
                       f"for {ev.duration:.2f}s")
            cluster.sim.schedule(
                ev.duration, lambda: self._end_spike(ev.extra))
        elif ev.kind == "partition-dc":
            if net.topology is None:
                self._note("partition-dc: no topology, skipped")
                return
            inside, outside = self._split_by_dc(ev.a)
            pairs = [(a, b) for a in inside for b in outside]
            for a, b in pairs:
                net.block(a, b)
            self._note(f"partition-dc {ev.a}: isolated {len(inside)} "
                       f"endpoints for {ev.duration:.2f}s")
            cluster.sim.schedule(
                ev.duration, lambda: self._heal_dc(ev.a, pairs))
        elif ev.kind == "wan-degrade":
            if net.topology is None:
                self._note("wan-degrade: no topology, skipped")
                return
            pairs = self._wan_pairs(ev.a, ev.b)
            for a, b in pairs:
                net.set_extra_delay(a, b, ev.extra, symmetric=False)
            self._note(f"wan-degrade {ev.a}>{ev.b} "
                       f"+{ev.extra * 1e3:.1f}ms "
                       f"for {ev.duration:.2f}s")
            cluster.sim.schedule(
                ev.duration, lambda: self._end_degrade(ev.a, ev.b, pairs))
        else:
            self._note(f"unknown fault kind {ev.kind!r}, skipped")

    def _split_by_dc(self, dc: str):
        """(endpoints in ``dc``, endpoints elsewhere), sorted by name."""
        topo = self.cluster.network.topology
        inside, outside = [], []
        for name in sorted(self.cluster.network._endpoints):
            (inside if topo.dc_of(name) == dc else outside).append(name)
        return inside, outside

    def _wan_pairs(self, dc_a: str, dc_b: str):
        """Every ordered endpoint pair on the ``dc_a`` → ``dc_b`` WAN
        direction (one direction only: routes degrade asymmetrically)."""
        topo = self.cluster.network.topology
        names = sorted(self.cluster.network._endpoints)
        a_side = [n for n in names if topo.dc_of(n) == dc_a]
        b_side = [n for n in names if topo.dc_of(n) == dc_b]
        return [(a, b) for a in a_side for b in b_side]

    def _heal(self, a: str, b: str, arrow: str,
              symmetric: bool = True) -> None:
        self.cluster.network.heal(a, b, symmetric=symmetric)
        self._note(f"healed {a}{arrow}{b}")

    def _heal_dc(self, dc: str, pairs) -> None:
        for a, b in pairs:
            self.cluster.network.heal(a, b)
        self._note(f"healed partition-dc {dc}")

    def _end_degrade(self, dc_a: str, dc_b: str, pairs) -> None:
        for a, b in pairs:
            self.cluster.network.set_extra_delay(a, b, 0.0,
                                                 symmetric=False)
        self._note(f"wan-degrade {dc_a}>{dc_b} ended")

    def _end_drop(self, a: str, b: str) -> None:
        self.cluster.network.set_drop_rate(a, b, 0.0)
        self._note(f"drop-burst {a}~{b} ended")

    def _end_spike(self, extra: float) -> None:
        net = self.cluster.network
        net.extra_delay = max(0.0, net.extra_delay - extra)
        self._note(f"latency-spike -{extra * 1e3:.1f}ms ended")


def arm_schedule(cluster: SpinnakerCluster, schedule: List[FaultEvent],
                 log: Optional[List[str]] = None) -> List[str]:
    """Arm an explicit fault schedule against an already-running
    cluster (relative to ``sim.now``) and return the fault log it will
    append to.  This is the hook for experiments that want a scripted
    chaos coda without the full :func:`run_chaos` harness."""
    if log is None:
        log = []
    _Applier(cluster, schedule, log).arm()
    return log


# ---------------------------------------------------------------------------
# The workload
# ---------------------------------------------------------------------------

def _cohort_keys(cluster: SpinnakerCluster, cohort_id: int,
                 count: int) -> List[bytes]:
    keys: List[bytes] = []
    i = 0
    while len(keys) < count:
        key = b"chaos-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


class _Workload:
    """Writers and readers over a fixed key set, recording history and
    the acknowledged-write map keyed by version."""

    def __init__(self, cluster: SpinnakerCluster, config: ChaosConfig,
                 until: float):
        self.cluster = cluster
        self.config = config
        self.until = until
        self.history = HistoryRecorder()
        #: key -> {version: value} for every acknowledged write
        self.acked: Dict[bytes, Dict[int, bytes]] = {}
        self.writes_acked = 0
        self.writes_failed = 0
        self.reads_done = 0
        self.reads_failed = 0
        self.keys: List[bytes] = []
        n_cohorts = len(cluster.partitioner.cohorts)
        for c in range(min(config.cohorts_used, n_cohorts)):
            self.keys.extend(_cohort_keys(cluster, c,
                                          config.keys_per_cohort))
        self.procs = []

    def start(self) -> None:
        sim = self.cluster.sim
        for w in range(self.config.writers):
            self.procs.append(spawn(
                sim, self._writer(w), name=f"chaos-writer{w}"))
        for r in range(self.config.readers):
            self.procs.append(spawn(
                sim, self._reader(r), name=f"chaos-reader{r}"))

    def done(self) -> bool:
        return all(p.triggered for p in self.procs)

    def _writer(self, wid: int):
        sim = self.cluster.sim
        client = self.cluster.client(f"chaos-w{wid}")
        # Writers stride over the shared key list at different offsets,
        # so every key sees writes from more than one client.
        my_keys = self.keys[wid::self.config.writers] or self.keys
        i = 0
        while sim.now < self.until:
            key = my_keys[i % len(my_keys)]
            value = b"w%d-%d" % (wid, i)
            start = sim.now
            try:
                result = yield from client.put(key, b"c", value)
            except DatastoreError:
                self.history.record_write(key, start, sim.now, 0,
                                          ok=False)
                self.writes_failed += 1
            else:
                self.history.record_write(key, start, sim.now,
                                          result.version)
                self.acked.setdefault(key, {})[result.version] = value
                self.writes_acked += 1
            i += 1
            yield timeout(sim, self.config.write_pace)

    def _reader(self, rid: int):
        sim = self.cluster.sim
        client = self.cluster.client(f"chaos-r{rid}")
        rng = self.cluster.rng.stream(f"chaos:reader{rid}")
        while sim.now < self.until:
            key = rng.choice(self.keys)
            start = sim.now
            try:
                got = yield from client.get(key, b"c", consistent=True)
            except DatastoreError:
                self.reads_failed += 1
            else:
                self.history.record_read(key, start, sim.now,
                                         got.version)
                self.reads_done += 1
            yield timeout(sim, self.config.read_pace)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

@dataclass
class ChaosReport:
    """Everything a chaos run produced, formatted deterministically."""

    seed: int
    config: ChaosConfig
    schedule: List[FaultEvent]
    fault_log: List[str]
    invariant_violations: List[InvariantViolation]
    history_violations: List
    durability_failures: List[str]
    counters: Dict[str, int]

    @property
    def ok(self) -> bool:
        return not (self.invariant_violations or self.history_violations
                    or self.durability_failures)

    def violation_summary(self) -> List[str]:
        out = [str(v) for v in self.invariant_violations]
        out += [f"history: {v}" for v in self.history_violations]
        out += [f"durability: {d}" for d in self.durability_failures]
        return out

    def format(self) -> str:
        c = self.counters
        lines = [
            f"chaos run: seed={self.seed} nodes={self.config.n_nodes} "
            f"duration={self.config.duration:g}s "
            f"events={len(self.schedule)}",
            "fault log:",
        ]
        lines += [f"  {entry}" for entry in self.fault_log]
        lines.append(
            f"workload: {c['writes_acked']} writes acked, "
            f"{c['writes_failed']} write timeouts, "
            f"{c['reads']} strong reads, {c['read_failures']} read "
            f"timeouts, {c['client_retries']} client retries")
        lines.append(
            f"network: {c['messages_sent']} msgs sent, "
            f"{c['messages_dropped']} dropped, "
            f"{c['stale_replies']} stale replies discarded")
        lines.append(
            f"audit: {c['audit_ticks']} ticks, "
            f"{len(self.invariant_violations)} invariant / "
            f"{len(self.history_violations)} history / "
            f"{len(self.durability_failures)} durability violations")
        for v in self.violation_summary():
            lines.append(f"  VIOLATION {v}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def run_chaos(seed: int, config: Optional[ChaosConfig] = None,
              schedule: Optional[List[FaultEvent]] = None) -> ChaosReport:
    """Run one chaos storm; deterministic in ``(seed, config,
    schedule)``.  With ``schedule=None`` the schedule is generated from
    the seed (the normal randomized mode); passing an explicit schedule
    is the replay/shrink mode."""
    config = config or ChaosConfig()
    if schedule is None:
        schedule = generate_schedule(seed, config)
    cluster = SpinnakerCluster(n_nodes=config.n_nodes,
                               config=config.spinnaker_config(),
                               seed=seed,
                               topology=config.topology(),
                               placement=config.placement())
    cluster.start()
    sim = cluster.sim
    storm_end = sim.now + config.duration

    fault_log: List[str] = []
    applier = _Applier(cluster, schedule, fault_log)
    applier.arm()
    workload = _Workload(cluster, config, until=storm_end)
    workload.start()
    auditor = InvariantAuditor(cluster)
    spawn(sim, auditor.run(config.audit_period,
                           until=storm_end + config.settle),
          name="chaos-auditor")

    # -- the storm ------------------------------------------------------
    cluster.run(config.duration)

    # -- heal and settle ------------------------------------------------
    cluster.network.heal()
    cluster.network.clear_link_faults()
    # lint: allow(dict-order) — nodes inserted as node0..nodeN-1
    for name, node in cluster.nodes.items():
        if not node.alive:
            node.restart()
    fault_log.append(f"[t={sim.now:9.4f}] storm over: healed network, "
                     f"restarted the dead")
    try:
        cluster.run_until(
            lambda: workload.done() and cluster.is_ready(),
            limit=config.settle + 60.0, what="post-storm recovery")
    except SimulationError as err:
        auditor.violations.append(InvariantViolation(
            sim.now, "recovery-liveness", str(err)))
    cluster.run(2.0)   # let catch-up and commit propagation finish

    # -- final audits ---------------------------------------------------
    auditor.final_audit()
    durability = _read_back(cluster, workload)
    history_violations = check_strong_history(workload.history)

    counters = {
        "writes_acked": workload.writes_acked,
        "writes_failed": workload.writes_failed,
        "reads": workload.reads_done,
        "read_failures": workload.reads_failed,
        "client_retries": sum(cl.retries
                              for cl in cluster._clients.values()),
        "messages_sent": cluster.network.messages_sent,
        "messages_dropped": cluster.network.messages_dropped,
        "stale_replies": sum(ep.stale_replies for ep in
                             cluster.network._endpoints.values()),
        "audit_ticks": auditor.ticks,
        "session_losses": sum(node.session_losses
                              for node in cluster.nodes.values()),
    }
    return ChaosReport(
        seed=seed, config=config, schedule=list(schedule),
        fault_log=fault_log,
        invariant_violations=auditor.violations,
        history_violations=history_violations,
        durability_failures=durability,
        counters=counters)


def replay_schedule(seed: int, config: ChaosConfig,
                    schedule: List[FaultEvent]) -> ChaosReport:
    """Replay an explicit fault schedule (shrunk or hand-written)
    against the same deterministic cluster + workload."""
    return run_chaos(seed, config, schedule=schedule)


def _read_back(cluster: SpinnakerCluster,
               workload: _Workload) -> List[str]:
    """No acknowledged write lost: after recovery, every key reads back
    at a version at least as new as its newest acknowledged write, and
    an exact acknowledged version carries the acknowledged value."""
    failures: List[str] = []
    sim = cluster.sim
    client = cluster.client("chaos-verify")

    def read_all():
        results = {}
        for key in sorted(workload.acked):
            try:
                results[key] = (yield from client.get(
                    key, b"c", consistent=True))
            except DatastoreError as err:
                results[key] = err
        return results

    proc = spawn(sim, read_all(), name="chaos-readback")
    try:
        cluster.run_until(lambda: proc.triggered, limit=120.0,
                          what="durability read-back")
    except SimulationError:
        return [f"read-back did not finish by t={sim.now:.4f}"]
    # lint: allow(dict-order) — read_all fills results in sorted key order
    for key, got in proc.result().items():
        versions = workload.acked[key]
        top = max(versions)
        if isinstance(got, DatastoreError):
            failures.append(f"{key!r}: unreadable after recovery "
                            f"({type(got).__name__})")
        elif not got.found:
            failures.append(f"{key!r}: acknowledged v{top} but key "
                            f"not found")
        elif got.version < top:
            failures.append(f"{key!r}: acknowledged v{top} but read "
                            f"back v{got.version}")
        elif got.version in versions and got.value != versions[got.version]:
            failures.append(
                f"{key!r}: v{got.version} value mismatch "
                f"({got.value!r} != {versions[got.version]!r})")
    return failures
