"""Targeted chaos for the chunked snapshot catch-up path (§6.1).

Unlike the randomized nemesis, these scenarios aim a fault at the most
delicate instant of recovery — while a far-behind follower is streaming
snapshot chunks from the leader — and then verify the protocol's
crash-resumability claims directly:

* ``crash-follower`` — kill the catching-up follower mid-snapshot-stream;
  on restart it must resume from its last durably applied chunk, and the
  leaders' served-chunk ledgers must show **no table re-shipped at or
  below the resume floor**.
* ``crash-leader`` — kill the leader mid-stream; the follower re-resolves
  leadership and continues against the new leader, whose fresh paging
  generation must still not re-ship anything below the follower's floor.
* ``roll-log`` — keep writing during the stream so the leader flushes,
  compacts and GCs its log underneath the in-flight catch-up,
  invalidating the paging generation; catch-up must still converge.

Every scenario runs the :class:`~repro.chaos.invariants.InvariantAuditor`
throughout and requires it clean, plus a full read-back of the victim's
state against the leader.  Deterministic in ``(seed, scenario)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core import Role, SpinnakerCluster, SpinnakerConfig
from ..core.partition import key_of
from ..sim.disk import DiskProfile
from ..sim.events import SimulationError
from ..sim.process import spawn, timeout
from ..storage.lsn import LSN
from .invariants import InvariantAuditor, InvariantViolation

__all__ = ["CatchupChaosResult", "run_catchup_chaos", "CATCHUP_SCENARIOS"]

CATCHUP_SCENARIOS = ("crash-follower", "crash-leader", "roll-log")

COHORT = 0


@dataclass
class CatchupChaosResult:
    """Outcome of one targeted catch-up chaos scenario."""

    seed: int
    scenario: str
    invariant_violations: List[InvariantViolation]
    failures: List[str]
    #: the victim's durable catch-up floor at the instant of the fault
    resume_floor: Optional[LSN]
    #: snapshot tables the victim had installed when the fault hit
    tables_at_fault: int
    #: chunks served to the victim after the fault (must be > 0: the
    #: fault really did land mid-stream)
    chunks_after_fault: int
    log: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.invariant_violations or self.failures)

    def format(self) -> str:
        lines = [f"catchup chaos: seed={self.seed} "
                 f"scenario={self.scenario}"]
        lines += [f"  {entry}" for entry in self.log]
        for v in self.invariant_violations:
            lines.append(f"  VIOLATION {v}")
        for f in self.failures:
            lines.append(f"  FAILURE {f}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _cohort_keys(cluster: SpinnakerCluster, cohort_id: int,
                 count: int) -> List[bytes]:
    keys: List[bytes] = []
    i = 0
    while len(keys) < count:
        key = b"cc-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1
    return keys


def _write_burst(cluster: SpinnakerCluster, keys: List[bytes],
                 rounds: int, tag: bytes, limit: float = 120.0) -> None:
    """Write ``rounds`` values to every key, synchronously."""
    client = cluster.client("cc-writer")

    def _go():
        for r in range(rounds):
            for key in keys:
                yield from client.put(key, b"c",
                                      tag + b"-%d" % r + b"x" * 200)

    proc = spawn(cluster.sim, _go(), name="cc-burst")
    cluster.run_until(lambda: proc.triggered, limit=limit,
                      what="catch-up chaos write burst")


def _served_to(cluster: SpinnakerCluster, victim: str,
               marks: dict) -> List[dict]:
    """Chunk-ledger entries for the victim recorded after ``marks``."""
    out = []
    for name in sorted(cluster.nodes):
        entries = list(cluster.nodes[name].catchup_served)
        for entry in entries[marks.get(name, 0):]:
            if entry["cohort"] == COHORT and entry["follower"] == victim:
                out.append(entry)
    return out


def _mark_served(cluster: SpinnakerCluster) -> dict:
    return {name: len(cluster.nodes[name].catchup_served)
            for name in sorted(cluster.nodes)}


def run_catchup_chaos(seed: int,
                      scenario: str = "crash-follower"
                      ) -> CatchupChaosResult:
    """Run one targeted mid-snapshot-stream fault scenario."""
    if scenario not in CATCHUP_SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}")
    # Tiny flush threshold + tiny chunk budget: the victim's gap spans
    # many small SSTables and the snapshot streams one table per chunk,
    # leaving a wide window to land a fault mid-stream.
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=0.1,
                             flush_threshold_bytes=6_000,
                             catchup_chunk_bytes=2_048)
    cluster = SpinnakerCluster(n_nodes=3, config=config, seed=seed)
    cluster.start()
    sim = cluster.sim
    log: List[str] = []
    failures: List[str] = []

    def note(text: str) -> None:
        log.append(f"[t={sim.now:9.4f}] {text}")

    auditor = InvariantAuditor(cluster)
    spawn(sim, auditor.run(0.05, until=sim.now + 600.0),
          name="cc-auditor")

    members = list(cluster.partitioner.cohort(COHORT).members)
    leader = cluster.leader_of(COHORT)
    victim = next(m for m in members if m != leader)
    # Enough distinct keys that one write round exceeds the flush
    # threshold (the memtable counts live cells, not appended bytes).
    keys = _cohort_keys(cluster, COHORT, 30)

    # 1. The victim falls far behind: crash it, then push enough history
    #    that the leader flushes repeatedly and rolls its log past the
    #    victim's commit point.
    cluster.crash_node(victim)
    cluster.expire_session_of(victim)
    note(f"crashed {victim}; writing history past its log")
    _write_burst(cluster, keys, rounds=16, tag=b"pre")
    leader_node = cluster.nodes[cluster.leader_of(COHORT)]
    note(f"leader log min_retained="
         f"{leader_node.wal.min_retained_lsn(COHORT)} "
         f"tables={len(leader_node.replicas[COHORT].engine.sstables)}")

    # 2. Restart the victim and wait for the snapshot stream to be
    #    demonstrably in flight (some tables installed, more to come).
    cluster.restart_node(victim)
    victim_replica = cluster.replica(victim, COHORT)
    try:
        cluster.run_until(
            lambda: (victim_replica.catchup_tables_ingested >= 2
                     and victim_replica.role != Role.FOLLOWER),
            limit=60.0, step=0.0005, what="snapshot stream in flight")
    except SimulationError:
        failures.append("snapshot stream never observed mid-flight")
        return _finish(cluster, auditor, seed, scenario, failures,
                       None, 0, 0, log)
    tables_at_fault = victim_replica.catchup_tables_ingested
    note(f"{victim} mid-stream: {tables_at_fault} tables installed, "
         f"floor={victim_replica.catchup_floor}")

    # 3. The fault.
    if scenario == "crash-follower":
        cluster.crash_node(victim)
        cluster.expire_session_of(victim)
        # wal.crash() just recomputed the floor from *durable* markers:
        # this is exactly what the restarted incarnation may assume.
        resume_floor = cluster.nodes[victim].wal.catchup_floor(COHORT)
        marks = _mark_served(cluster)
        note(f"crashed {victim} mid-stream; durable resume floor "
             f"{resume_floor}")
        cluster.run(0.5)
        cluster.restart_node(victim)
    elif scenario == "crash-leader":
        resume_floor = victim_replica.catchup_floor
        marks = _mark_served(cluster)
        dead = cluster.kill_leader(COHORT)
        note(f"crashed leader {dead} mid-stream; victim floor "
             f"{resume_floor}")
        cluster.run(0.5)
    else:  # roll-log
        resume_floor = victim_replica.catchup_floor
        marks = _mark_served(cluster)
        note("rolling the leader's log under the in-flight stream")
        _write_burst(cluster, keys, rounds=16, tag=b"mid")
        note(f"leader log min_retained now "
             f"{leader_node.wal.min_retained_lsn(COHORT)}")

    # 4. Convergence: the victim must end a fully caught-up follower.
    def caught_up() -> bool:
        lead = cluster.leader_of(COHORT)
        if lead is None or not cluster.nodes[victim].alive:
            return False
        lead_cmt = cluster.replica(lead, COHORT).committed_lsn
        return (victim_replica.role == Role.FOLLOWER
                and victim_replica.committed_lsn >= lead_cmt)

    try:
        cluster.run_until(caught_up, limit=120.0,
                          what="victim caught up after fault")
    except SimulationError as err:
        failures.append(f"victim never converged: {err}")
    cluster.run(1.0)

    # 5. Resume verification: nothing served to the victim after the
    #    fault may carry a table at or below its resume floor — state
    #    below the floor was durably installed and must not re-ship.
    served = _served_to(cluster, victim, marks)
    chunks_after = len(served)
    for entry in served:
        bad = [lsn for lsn in entry["table_max_lsns"]
               if lsn <= resume_floor]
        if bad:
            failures.append(
                f"re-shipped table(s) {bad} at/below resume floor "
                f"{resume_floor} (chunk at t={entry['t']:.4f})")
    if chunks_after == 0 and not failures:
        failures.append("no chunks served after the fault — scenario "
                        "did not exercise resume")
    if scenario == "roll-log":
        generations = {entry["source"] for entry in served}
        if len(generations) < 2:
            failures.append("log roll did not change the paging "
                            "generation under the in-flight stream")
    note(f"{chunks_after} chunks served to {victim} after the fault")

    # 6. Read-back: the victim's engine agrees with the leader on every
    #    key (it is a follower, so its committed state must match).
    lead = cluster.leader_of(COHORT)
    if lead is not None:
        lead_engine = cluster.replica(lead, COHORT).engine
        for key in keys:
            want = lead_engine.get(key, b"c")
            got = victim_replica.engine.get(key, b"c")
            if want is None:
                continue
            if got is None or got.value != want.value:
                failures.append(
                    f"{key!r}: victim read "
                    f"{None if got is None else got.value!r}, leader "
                    f"has {want.value!r}")
    for err in cluster.all_failures():
        failures.append(f"handler failure: {err!r}")
    return _finish(cluster, auditor, seed, scenario, failures,
                   resume_floor, tables_at_fault, chunks_after, log)


def _finish(cluster, auditor, seed, scenario, failures, resume_floor,
            tables_at_fault, chunks_after, log) -> CatchupChaosResult:
    auditor.final_audit()
    return CatchupChaosResult(
        seed=seed, scenario=scenario,
        invariant_violations=auditor.violations,
        failures=failures, resume_floor=resume_floor,
        tables_at_fault=tables_at_fault,
        chunks_after_fault=chunks_after, log=log)
