"""Cluster-wide invariant auditing for chaos runs.

The paper's safety claims, stated as machine-checkable invariants over a
live :class:`~repro.core.SpinnakerCluster`:

* **leader uniqueness** — at most one live, open-for-writes leader per
  cohort *per epoch* (§7.2: the epoch counter is bumped through the
  coordination service exactly once per takeover, so two leaders sharing
  an epoch means the election protocol lost mutual exclusion);
* **committed-LSN monotonicity** — within one node incarnation, a
  replica's committed LSN never moves backwards (a restart legitimately
  resets it before recovery rebuilds the prefix);
* **log-prefix matching** — after the storm settles, any two cohort
  members agree record-for-record on the committed, still-retained part
  of the log (Multi-Paxos log safety);
* **integrity** — no handler process anywhere died of an unexpected
  exception.

The auditor runs as a periodic simulation process *during* the storm
(leader uniqueness and monotonicity are point-in-time properties worth
catching in the act) and once more after recovery for the whole-log
checks.  Durability of acknowledged writes is checked by the runner,
which owns the client history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.process import timeout
from ..core.replication import Role

__all__ = ["InvariantViolation", "InvariantAuditor"]


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant violation, stamped with simulated time."""

    at: float
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[t={self.at:.4f}] {self.rule}: {self.detail}"


class InvariantAuditor:
    """Watches a cluster for invariant violations."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.violations: List[InvariantViolation] = []
        self.ticks = 0
        # (node, cohort) -> (incarnation, committed_lsn, epoch)
        self._last_seen: Dict[Tuple[str, int], Tuple[int, object, int]] = {}

    def _flag(self, rule: str, detail: str) -> None:
        self.violations.append(
            InvariantViolation(self.cluster.sim.now, rule, detail))

    # ------------------------------------------------------------------
    # Point-in-time checks (run repeatedly during the storm)
    # ------------------------------------------------------------------
    def audit_tick(self) -> None:
        self.ticks += 1
        self._check_leader_uniqueness()
        self._check_lsn_monotonicity()

    def _check_leader_uniqueness(self) -> None:
        cluster = self.cluster
        for cohort in cluster.partitioner.cohorts:
            by_epoch: Dict[int, List[str]] = {}
            for member in cohort.members:
                node = cluster.nodes[member]
                replica = node.replicas.get(cohort.cohort_id)
                if (node.alive and replica is not None
                        and replica.role == Role.LEADER
                        and replica.open_for_writes):
                    by_epoch.setdefault(replica.epoch, []).append(member)
            for epoch, leaders in by_epoch.items():
                if len(leaders) > 1:
                    self._flag(
                        "leader-uniqueness",
                        f"cohort {cohort.cohort_id} epoch {epoch} has "
                        f"{len(leaders)} open leaders: "
                        f"{sorted(leaders)}")

    def _check_lsn_monotonicity(self) -> None:
        cluster = self.cluster
        for name, node in cluster.nodes.items():
            if not node.alive:
                continue
            for cohort_id, replica in node.replicas.items():
                key = (name, cohort_id)
                seen = self._last_seen.get(key)
                now = (node.incarnation, replica.committed_lsn,
                       replica.epoch)
                if seen is not None and seen[0] == now[0]:
                    if now[1] < seen[1]:
                        self._flag(
                            "committed-lsn-monotonicity",
                            f"{name}/cohort {cohort_id} committed LSN "
                            f"went backwards: {seen[1]} -> {now[1]} "
                            f"within incarnation {now[0]}")
                    if now[2] < seen[2]:
                        self._flag(
                            "epoch-monotonicity",
                            f"{name}/cohort {cohort_id} epoch went "
                            f"backwards: {seen[2]} -> {now[2]} within "
                            f"incarnation {now[0]}")
                self._last_seen[key] = now

    # ------------------------------------------------------------------
    # Whole-log checks (run once the cluster has healed and settled)
    # ------------------------------------------------------------------
    def final_audit(self) -> None:
        self.audit_tick()
        self._check_log_prefixes()
        for failure in self.cluster.all_failures():
            self._flag("integrity",
                       f"handler process died: {failure!r}")

    def _check_log_prefixes(self) -> None:
        cluster = self.cluster
        for cohort in cluster.partitioner.cohorts:
            cid = cohort.cohort_id
            live = [m for m in cohort.members if cluster.nodes[m].alive]
            for i, a in enumerate(live):
                for b in live[i + 1:]:
                    self._compare_logs(cid, a, b)

    def _compare_logs(self, cohort_id: int, a: str, b: str) -> None:
        """Committed, retained log prefixes of ``a`` and ``b`` must agree
        record-for-record (key, column, value, version)."""
        cluster = self.cluster
        node_a, node_b = cluster.nodes[a], cluster.nodes[b]
        rep_a = node_a.replicas.get(cohort_id)
        rep_b = node_b.replicas.get(cohort_id)
        if rep_a is None or rep_b is None:
            return  # member still materializing its replica mid-migration
        upto = min(rep_a.committed_lsn, rep_b.committed_lsn)
        # Floor of the comparable window: rolled-over or checkpointed
        # records left the log legitimately, and records below a node's
        # catch-up floor arrived as shipped SSTables, never as log
        # records (§6.1) — holes there are not divergence.
        after = max(node_a.wal.min_retained_lsn(cohort_id),
                    node_b.wal.min_retained_lsn(cohort_id),
                    rep_a.engine.checkpoint_lsn,
                    rep_b.engine.checkpoint_lsn,
                    rep_a.catchup_floor, rep_b.catchup_floor)
        if upto <= after:
            return  # no overlapping committed window still in both logs
        recs_a = {r.lsn: r for r in node_a.wal.write_records(
            cohort_id, after=after, upto=upto)}
        recs_b = {r.lsn: r for r in node_b.wal.write_records(
            cohort_id, after=after, upto=upto)}
        skipped = (node_a.wal.skipped_lsns(cohort_id)
                   | node_b.wal.skipped_lsns(cohort_id))
        for lsn in sorted(set(recs_a) | set(recs_b)):
            if lsn in skipped:
                continue
            ra, rb = recs_a.get(lsn), recs_b.get(lsn)
            if ra is None or rb is None:
                missing = a if ra is None else b
                self._flag(
                    "log-prefix",
                    f"cohort {cohort_id} committed record {lsn} missing "
                    f"from {missing}'s log (peers {a}/{b})")
            elif (ra.key, ra.colname, ra.value, ra.version,
                  ra.tombstone) != (rb.key, rb.colname, rb.value,
                                    rb.version, rb.tombstone):
                self._flag(
                    "log-prefix",
                    f"cohort {cohort_id} logs diverge at {lsn}: "
                    f"{a} has {ra.key!r}/{ra.colname!r} v{ra.version}, "
                    f"{b} has {rb.key!r}/{rb.colname!r} v{rb.version}")

    # ------------------------------------------------------------------
    # The periodic audit process
    # ------------------------------------------------------------------
    def run(self, period: float = 0.25, until: float = float("inf")):
        """Generator: audit every ``period`` seconds until ``until``."""
        sim = self.cluster.sim
        while sim.now < until:
            self.audit_tick()
            yield timeout(sim, period)
