"""Randomized chaos testing for the Spinnaker reproduction.

A Jepsen-style nemesis (:mod:`~repro.chaos.nemesis`) generates seeded
random fault schedules — leader/follower crash-restarts, permanent disk
loss, symmetric and one-directional partitions, latency spikes,
message-drop bursts — and plays them against a live
:class:`~repro.core.SpinnakerCluster` while a concurrent workload records
a client-observed history.  An invariant auditor
(:mod:`~repro.chaos.invariants`) checks cluster-wide safety properties
during and after the storm, and :mod:`~repro.chaos.shrinker` minimizes a
failing schedule to the shortest fault sequence that still violates an
invariant.

Every run is reproducible from ``(seed, config)`` — the whole stack sits
on the deterministic simulation kernel — so ``python -m repro chaos
--seed N`` twice prints byte-identical fault logs and audit reports.
"""

from .catchup import (CATCHUP_SCENARIOS, CatchupChaosResult,
                      run_catchup_chaos)
from .invariants import InvariantAuditor, InvariantViolation
from .nemesis import (ChaosConfig, ChaosReport, FaultEvent, arm_schedule,
                      generate_schedule, replay_schedule, run_chaos)
from .shrinker import ddmin, format_regression_test, shrink_run

__all__ = [
    "ChaosConfig", "ChaosReport", "FaultEvent", "arm_schedule",
    "generate_schedule", "run_chaos", "replay_schedule",
    "CATCHUP_SCENARIOS", "CatchupChaosResult", "run_catchup_chaos",
    "InvariantAuditor", "InvariantViolation",
    "ddmin", "shrink_run", "format_regression_test",
]
