"""Hierarchical network topology: datacenters, racks, and WAN links.

The flat :class:`~repro.sim.network.Network` models one rack-local
switch — every pair of endpoints shares a single
:class:`~repro.sim.network.LatencyModel`.  A :class:`Topology` upgrades
that to the three link classes of a geo-replicated deployment:

* **intra-rack** — both endpoints on the same (dc, rack) pair; the
  1-GbE rack switch of the paper's testbed (Appendix C);
* **intra-dc** — same datacenter, different racks; a couple of extra
  switch hops and an aggregation layer;
* **wan** — different datacenters; milliseconds to tens of
  milliseconds of propagation, with *asymmetric* per-direction delay
  (real inter-DC routes are rarely symmetric — see "The Performance of
  Paxos in the Cloud", PAPERS.md).

Each link class has its own latency/bandwidth/jitter model; the WAN
class additionally adds a fixed one-way propagation delay per ordered
``(src_dc, dst_dc)`` pair.  Endpoints not explicitly placed fall into
``(default_dc, default_rack)``, so a topology-bearing network behaves
exactly like the flat one until somebody is actually placed remotely.

Determinism: :meth:`Topology.delay` draws exactly **one** jitter sample
per message from the network RNG stream — the same draw count as the
flat path — so flat and hierarchical runs with the same seed consume
RNG state in the same pattern, and a run without a topology is
bit-identical to pre-topology builds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .network import LatencyModel

__all__ = ["Placement", "Topology"]


class Placement:
    """Where one endpoint lives: a (datacenter, rack) pair."""

    __slots__ = ("dc", "rack")

    def __init__(self, dc: str, rack: str):
        self.dc = dc
        self.rack = rack

    def __repr__(self) -> str:
        return f"Placement({self.dc!r}, {self.rack!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Placement)
                and self.dc == other.dc and self.rack == other.rack)


class Topology:
    """Per-link-class latency for a multi-datacenter deployment.

    ``wan_delays`` maps ordered ``(src_dc, dst_dc)`` pairs to a fixed
    one-way propagation delay in seconds; directions may differ
    (asymmetric routes).  Pairs not in the map fall back to
    ``wan_one_way``.  ``preferred_dc`` marks the datacenter hosting the
    client majority — placement policies put leaders there (see
    ``core/partition.py``); it has no effect on message delays.
    """

    def __init__(self,
                 intra_rack: Optional[LatencyModel] = None,
                 intra_dc: Optional[LatencyModel] = None,
                 wan: Optional[LatencyModel] = None,
                 wan_one_way: float = 0.025,
                 wan_delays: Optional[Dict[Tuple[str, str], float]] = None,
                 preferred_dc: Optional[str] = None,
                 default_dc: str = "dc0",
                 default_rack: str = "rack0"):
        self.intra_rack = intra_rack or LatencyModel()
        self.intra_dc = intra_dc or LatencyModel(
            base=250e-6, bandwidth_bytes_per_sec=125e6, jitter=60e-6)
        # The WAN model carries switching cost + serialization + jitter;
        # propagation lives in the per-direction delay map below.
        self.wan = wan or LatencyModel(
            base=400e-6, bandwidth_bytes_per_sec=50e6, jitter=500e-6)
        self.wan_one_way = wan_one_way
        self.wan_delays: Dict[Tuple[str, str], float] = dict(
            wan_delays or {})
        self.preferred_dc = preferred_dc
        self.default = Placement(default_dc, default_rack)
        self._placements: Dict[str, Placement] = {}

    # -- placement ------------------------------------------------------
    def place(self, name: str, dc: str, rack: Optional[str] = None) -> None:
        """Pin endpoint ``name`` to a datacenter (and optionally rack)."""
        self._placements[name] = Placement(
            dc, rack if rack is not None else f"{dc}-rack0")

    def placement_of(self, name: str) -> Placement:
        """The endpoint's placement; unplaced endpoints share the
        default (dc, rack) so they behave exactly as on a flat network."""
        return self._placements.get(name, self.default)

    def dc_of(self, name: str) -> str:
        return self.placement_of(name).dc

    def same_dc(self, a: str, b: str) -> bool:
        return self.dc_of(a) == self.dc_of(b)

    def placed_in_dc(self, dc: str) -> List[str]:
        """Every explicitly placed endpoint in ``dc`` (insertion order,
        which is deterministic — placements happen in program order)."""
        return [name for name, p in self._placements.items()
                if p.dc == dc]

    def dcs(self) -> List[str]:
        """All datacenters with at least one placed endpoint, sorted."""
        return sorted({p.dc for p in self._placements.values()}
                      | {self.default.dc})

    # -- link classification --------------------------------------------
    def link_class(self, src: str, dst: str) -> str:
        """``"intra-rack"`` | ``"intra-dc"`` | ``"wan"`` for a message
        from ``src`` to ``dst``."""
        a, b = self.placement_of(src), self.placement_of(dst)
        if a.dc != b.dc:
            return "wan"
        if a.rack != b.rack:
            return "intra-dc"
        return "intra-rack"

    def wan_delay(self, src_dc: str, dst_dc: str) -> float:
        """Fixed one-way propagation delay ``src_dc`` → ``dst_dc``."""
        return self.wan_delays.get((src_dc, dst_dc), self.wan_one_way)

    # -- delays ---------------------------------------------------------
    def delay(self, src: str, dst: str, size_bytes: int, rng) -> float:
        """One-way delay for one message.  Draws exactly one jitter
        sample from ``rng`` regardless of link class (same RNG
        consumption pattern as the flat network path)."""
        a, b = self.placement_of(src), self.placement_of(dst)
        if a.dc != b.dc:
            return (self.wan.delay(size_bytes, rng)
                    + self.wan_delay(a.dc, b.dc))
        if a.rack != b.rack:
            return self.intra_dc.delay(size_bytes, rng)
        return self.intra_rack.delay(size_bytes, rng)

    def nominal(self, src: str, dst: str, size_bytes: int = 4096,
                jitter_mult: float = 3.0) -> float:
        """Jitter-free estimate of the ``src`` → ``dst`` one-way delay,
        padded by ``jitter_mult`` mean jitters (for timeout budgeting,
        never for transmission)."""
        a, b = self.placement_of(src), self.placement_of(dst)
        if a.dc != b.dc:
            model, extra = self.wan, self.wan_delay(a.dc, b.dc)
        elif a.rack != b.rack:
            model, extra = self.intra_dc, 0.0
        else:
            model, extra = self.intra_rack, 0.0
        transfer = size_bytes / model.bandwidth if model.bandwidth else 0.0
        return model.base + transfer + jitter_mult * model.jitter + extra

    def rtt(self, src: str, dst: str, size_bytes: int = 256) -> float:
        """Nominal round trip ``src`` → ``dst`` → ``src`` (no jitter
        padding): the yardstick experiments compare latencies against."""
        return (self.nominal(src, dst, size_bytes, jitter_mult=0.0)
                + self.nominal(dst, src, size_bytes, jitter_mult=0.0))

    def wan_rtt(self, dc_a: str, dc_b: str, size_bytes: int = 256) -> float:
        """Nominal WAN round trip between two datacenters."""
        transfer = (size_bytes / self.wan.bandwidth
                    if self.wan.bandwidth else 0.0)
        one_way = self.wan.base + transfer
        return (2 * one_way + self.wan_delay(dc_a, dc_b)
                + self.wan_delay(dc_b, dc_a))

    def min_wan_rtt(self, size_bytes: int = 256) -> float:
        """The smallest nominal WAN RTT between any two placed DCs —
        the floor any cross-DC round trip must pay."""
        dcs = self.dcs()
        rtts = [self.wan_rtt(a, b, size_bytes)
                for i, a in enumerate(dcs) for b in dcs[i + 1:]]
        return min(rtts) if rtts else 0.0

    def rtt_bound(self, size_bytes: int = 4096) -> float:
        """Upper estimate of any round trip in this topology: twice the
        worst padded one-way delay over every link class and WAN
        direction.  Timeout derivation uses this (``core/api.py``,
        ``coord/client.py``) so per-try budgets scale with the WAN
        instead of assuming a LAN."""
        worst = 0.0
        for model in (self.intra_rack, self.intra_dc):
            transfer = (size_bytes / model.bandwidth
                        if model.bandwidth else 0.0)
            worst = max(worst, model.base + transfer + 3.0 * model.jitter)
        transfer = (size_bytes / self.wan.bandwidth
                    if self.wan.bandwidth else 0.0)
        wan_fixed = self.wan.base + transfer + 3.0 * self.wan.jitter
        worst_prop = self.wan_one_way
        for pair in sorted(self.wan_delays):
            worst_prop = max(worst_prop, self.wan_delays[pair])
        worst = max(worst, wan_fixed + worst_prop)
        return 2.0 * worst
