"""Named deterministic random-number streams.

All randomness in a simulation flows through a single :class:`RngRegistry`
seeded once per run.  Each subsystem asks for a *named* stream
(``rng.stream("network")``, ``rng.stream("disk:nodeA")``...), so adding a
random draw in one subsystem never perturbs the sequence seen by another —
a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random  # lint: allow(nondet-import) — this IS the seeded source
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for reproducible, independent ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's.

        The digest input is namespaced with a separator that cannot
        appear between the seed and a stream name (streams hash
        ``"{seed}:{name}"``), so ``fork("x")`` can never collide with a
        stream literally named ``"fork:x"``.
        """
        digest = hashlib.sha256(f"{self.seed}|fork|{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
