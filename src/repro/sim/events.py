"""Discrete-event simulation kernel.

This module provides the scheduler (:class:`Simulator`) and the basic
one-shot :class:`Event` primitive that everything else in :mod:`repro.sim`
is built on.  The design follows the classic event-heap pattern (similar in
spirit to SimPy): the simulator owns a priority queue of ``[time, priority,
sequence, callback]`` entries and executes them in timestamp order.  Time is
a float measured in **seconds** of simulated time.

Hot path
--------
Every simulated message, disk force, and process resume passes through
this heap, so the entry representation is chosen for speed (see
DESIGN.md, "Kernel hot paths"):

* entries are plain 4-element **lists**, not objects — no per-event
  allocation of a wrapper class, and ``heapq`` compares them with C-level
  list comparison instead of a Python ``__lt__`` call.  The comparison
  never reaches the callback element because the sequence number (index
  2) is unique per entry;
* cancellation is **lazy**: :meth:`Simulator.cancel` nulls the callback
  slot and the entry is skipped when it surfaces at the top of the heap,
  instead of churning the heap structure;
* :meth:`Simulator.run` drives the heap with method references hoisted
  into locals.

Determinism
-----------
Two runs with the same seed must produce identical traces, so ties in the
heap are broken by a monotonically increasing sequence number: events
scheduled earlier run earlier.  No wall-clock time or unordered-set
iteration is used anywhere in the kernel.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Priority for callbacks that must run before ordinary ones at the same
#: timestamp (used internally when an event fires to wake its waiters).
URGENT = 0

#: Default priority for user-scheduled callbacks.
NORMAL = 1

#: Heap-entry layout: ``[time, priority, seq, callback]``.  A cancelled
#: entry has ``callback`` set to None and is skipped lazily on pop.
_TIME, _PRIORITY, _SEQ, _CALLBACK = 0, 1, 2, 3


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Simulator:
    """The discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[list] = []
        self._seq: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None],
                 priority: int = NORMAL) -> list:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns a handle accepted by :meth:`cancel`, which removes the
        callback if it has not yet fired.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now + delay, priority, seq, callback]
        heappush(self._heap, entry)
        return entry

    def call_at(self, time: float, callback: Callable[[], None],
                priority: int = NORMAL) -> list:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({time} < {self._now})")
        seq = self._seq
        self._seq = seq + 1
        entry = [time, priority, seq, callback]
        heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry: list) -> None:
        """Cancel a scheduled entry (no-op if it already ran).

        Lazy deletion: the heap entry stays in place with its callback
        nulled and is discarded when it reaches the top.
        """
        entry[_CALLBACK] = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending callback.  Returns False when idle."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            self._now = entry[_TIME]
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run callbacks until the heap drains or ``until`` is reached.

        When ``until`` is given, simulated time is advanced to exactly
        ``until`` even if the last event fired earlier.
        """
        heap = self._heap
        pop = heappop
        self._running = True
        try:
            if until is None:
                while heap:
                    entry = pop(heap)
                    callback = entry[_CALLBACK]
                    if callback is not None:
                        self._now = entry[_TIME]
                        callback()
            else:
                while heap:
                    if heap[0][_TIME] > until:
                        break
                    entry = pop(heap)
                    callback = entry[_CALLBACK]
                    if callback is not None:
                        self._now = entry[_TIME]
                        callback()
        except StopSimulation:
            pass
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until_complete(self, event: "Event",
                           limit: Optional[float] = None) -> Any:
        """Run until ``event`` fires; return its value (or raise).

        ``limit`` bounds simulated time; exceeding it raises
        :class:`SimulationError`.
        """
        def _stop(_ev: "Event") -> None:
            raise StopSimulation()

        event.add_callback(_stop)
        self.run(until=limit)
        if not event.triggered:
            raise SimulationError(
                f"event not triggered by t={self._now} (limit={limit})")
        return event.result()

    def stop(self) -> None:
        """Stop a :meth:`run` in progress at the current time."""
        raise StopSimulation()


class Event:
    """A one-shot event that callbacks (and processes) can wait on.

    An event starts *pending*; exactly one of :meth:`succeed` or
    :meth:`fail` moves it to *triggered*.  Callbacks added before the
    trigger run (in order) at the moment of triggering; callbacks added
    after run immediately.
    """

    __slots__ = ("sim", "_ok", "_value", "_callbacks", "_defused")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._ok: Optional[bool] = None  # None=pending, True/False=done
        self._value: Any = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event still pending")
        return self._ok

    def result(self) -> Any:
        """The success value; re-raises the failure exception."""
        if self._ok is None:
            raise SimulationError("event still pending")
        if self._ok:
            return self._value
        self._defused = True
        raise self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        if self._ok is False:
            return self._value
        return None

    def defuse(self) -> None:
        """Mark a failed event as handled (suppresses the unhandled check)."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        callbacks = self._callbacks
        self._callbacks = None
        for cb in callbacks or ():
            cb(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = False
        self._value = exc
        callbacks = self._callbacks
        self._callbacks = None
        for cb in callbacks or ():
            cb(self)
        return self

    # -- waiting ----------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` when (or if already) triggered."""
        if self._callbacks is None:
            callback(self)
        else:
            self._callbacks.append(callback)
