"""Discrete-event simulation kernel.

This module provides the scheduler (:class:`Simulator`) and the basic
one-shot :class:`Event` primitive that everything else in :mod:`repro.sim`
is built on.  The design follows the classic event-heap pattern (similar in
spirit to SimPy): the simulator owns a priority queue of ``(time, priority,
sequence, callback)`` entries and executes them in timestamp order.  Time is
a float measured in **seconds** of simulated time.

Determinism
-----------
Two runs with the same seed must produce identical traces, so ties in the
heap are broken by a monotonically increasing sequence number: events
scheduled earlier run earlier.  No wall-clock time or unordered-set
iteration is used anywhere in the kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Priority for callbacks that must run before ordinary ones at the same
#: timestamp (used internally when an event fires to wake its waiters).
URGENT = 0

#: Default priority for user-scheduled callbacks.
NORMAL = 1


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class _Entry:
    """A scheduled callback.  ``cancelled`` entries are skipped lazily."""

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Entry") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)


class Simulator:
    """The discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[_Entry] = []
        self._seq: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None],
                 priority: int = NORMAL) -> _Entry:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns a handle whose :meth:`cancel` removes the callback if it has
        not yet fired.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, priority)

    def call_at(self, time: float, callback: Callable[[], None],
                priority: int = NORMAL) -> _Entry:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({time} < {self._now})")
        entry = _Entry(time, priority, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry: _Entry) -> None:
        """Cancel a scheduled entry (no-op if it already ran)."""
        entry.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending callback.  Returns False when idle."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run callbacks until the heap drains or ``until`` is reached.

        When ``until`` is given, simulated time is advanced to exactly
        ``until`` even if the last event fired earlier.
        """
        self._running = True
        try:
            while self._heap:
                entry = self._heap[0]
                if until is not None and entry.time > until:
                    break
                self.step()
        except StopSimulation:
            pass
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until_complete(self, event: "Event",
                           limit: Optional[float] = None) -> Any:
        """Run until ``event`` fires; return its value (or raise).

        ``limit`` bounds simulated time; exceeding it raises
        :class:`SimulationError`.
        """
        def _stop(_ev: "Event") -> None:
            raise StopSimulation()

        event.add_callback(_stop)
        self.run(until=limit)
        if not event.triggered:
            raise SimulationError(
                f"event not triggered by t={self._now} (limit={limit})")
        return event.result()

    def stop(self) -> None:
        """Stop a :meth:`run` in progress at the current time."""
        raise StopSimulation()


class Event:
    """A one-shot event that callbacks (and processes) can wait on.

    An event starts *pending*; exactly one of :meth:`succeed` or
    :meth:`fail` moves it to *triggered*.  Callbacks added before the
    trigger run (in order) at the moment of triggering; callbacks added
    after run immediately.
    """

    __slots__ = ("sim", "_ok", "_value", "_callbacks", "_defused")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._ok: Optional[bool] = None  # None=pending, True/False=done
        self._value: Any = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event still pending")
        return self._ok

    def result(self) -> Any:
        """The success value; re-raises the failure exception."""
        if self._ok is None:
            raise SimulationError("event still pending")
        if self._ok:
            return self._value
        self._defused = True
        raise self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        if self._ok is False:
            return self._value
        return None

    def defuse(self) -> None:
        """Mark a failed event as handled (suppresses the unhandled check)."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        for cb in callbacks or ():
            cb(self)

    # -- waiting ----------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` when (or if already) triggered."""
        if self._callbacks is None:
            callback(self)
        else:
            self._callbacks.append(callback)
