"""Failure injection.

Drives the availability experiments (Table 1, Fig. 1, the Appendix B
recovery walk-through) and the fault-tolerance tests.  A schedule is a
list of timed actions against objects that expose ``crash()`` /
``restart()`` (nodes) or against the network (partitions).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from .events import Simulator

__all__ = ["FailureSchedule", "CrashRestartable"]


class CrashRestartable:
    """Protocol-by-convention for anything the schedule can kill."""

    def crash(self) -> None:  # pragma: no cover - interface only
        raise NotImplementedError

    def restart(self) -> None:  # pragma: no cover - interface only
        raise NotImplementedError


class FailureSchedule:
    """Timed crash/restart/partition actions, applied to a simulator."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.log: List[Tuple[float, str]] = []

    def _run(self, at: float, label: str, fn: Callable[[], Any]) -> None:
        def action() -> None:
            self.log.append((self.sim.now, label))
            fn()
        self.sim.call_at(at, action)

    # -- node failures ----------------------------------------------------
    def crash_at(self, at: float, target: Any,
                 label: Optional[str] = None) -> None:
        name = label or getattr(target, "name", repr(target))
        self._run(at, f"crash {name}", target.crash)

    def restart_at(self, at: float, target: Any,
                   label: Optional[str] = None) -> None:
        name = label or getattr(target, "name", repr(target))
        self._run(at, f"restart {name}", target.restart)

    def crash_for(self, at: float, duration: float, target: Any,
                  label: Optional[str] = None) -> None:
        """Crash at ``at`` and restart ``duration`` seconds later."""
        self.crash_at(at, target, label)
        self.restart_at(at + duration, target, label)

    def lose_disk_at(self, at: float, target: Any,
                     label: Optional[str] = None) -> None:
        """Permanent media failure: the node restarts with no local data.

        ``target`` must expose ``lose_disk()`` (Spinnaker nodes do); the
        follower-recovery path then skips local recovery and goes straight
        to catch-up (§6.1).
        """
        name = label or getattr(target, "name", repr(target))
        self._run(at, f"lose-disk {name}", target.lose_disk)

    # -- network failures -----------------------------------------------
    def partition_at(self, at: float, network: Any, a: str, b: str,
                     symmetric: bool = True) -> None:
        arrow = "|" if symmetric else ">"
        self._run(at, f"partition {a}{arrow}{b}",
                  lambda: network.block(a, b, symmetric=symmetric))

    def heal_at(self, at: float, network: Any,
                a: Optional[str] = None, b: Optional[str] = None) -> None:
        self._run(at, f"heal {a or 'all'}",
                  lambda: network.heal(a, b))

    def partition_for(self, at: float, duration: float, network: Any,
                      a: str, b: str, symmetric: bool = True) -> None:
        """Partition at ``at`` and heal the pair ``duration`` later."""
        self.partition_at(at, network, a, b, symmetric=symmetric)
        self.heal_at(at + duration, network, a, b)

    def drop_burst(self, at: float, duration: float, network: Any,
                   a: str, b: str, rate: float,
                   symmetric: bool = True) -> None:
        """Make the ``a``/``b`` link lossy for a window of time."""
        self._run(at, f"drop {a}~{b} p={rate:g}",
                  lambda: network.set_drop_rate(a, b, rate,
                                                symmetric=symmetric))
        self._run(at + duration, f"drop-end {a}~{b}",
                  lambda: network.set_drop_rate(a, b, 0.0,
                                                symmetric=symmetric))

    def latency_spike(self, at: float, duration: float, network: Any,
                      extra: float) -> None:
        """Add ``extra`` seconds to every message for a window of time.

        Spikes are additive, so overlapping spikes compose and unwind
        deterministically.
        """
        def _raise() -> None:
            network.extra_delay += extra

        def _lower() -> None:
            network.extra_delay = max(0.0, network.extra_delay - extra)

        self._run(at, f"slow +{extra:g}s", _raise)
        self._run(at + duration, f"slow-end -{extra:g}s", _lower)
