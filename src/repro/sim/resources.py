"""Shared-resource primitives: FIFO resources (CPUs) and stores (queues).

``Resource`` models a pool of identical servers (e.g. the CPU cores of a
node): requests queue FIFO and are granted as capacity frees up.  The
``serve`` helper wraps the common acquire → hold for a service time →
release pattern, which is how every CPU-bound operation in the simulated
datastores is charged.

``Store`` is an unbounded FIFO queue with blocking ``get``; it is used for
mailboxes and worker queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from .events import Event, SimulationError, Simulator
from .process import Timeout

__all__ = ["Resource", "Store", "serve"]


class Request(Event):
    """A pending acquisition of one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """A FIFO pool of ``capacity`` identical units."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        """Return an event that succeeds when a unit is acquired."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self) -> None:
        """Release one unit, granting it to the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1

    def utilization_snapshot(self) -> float:
        """Instantaneous fraction of capacity in use."""
        return self._in_use / self.capacity


def serve(resource: Resource, service_time: float,
          value: Any = None) -> Generator[Event, Any, Any]:
    """Process fragment: acquire ``resource``, hold it, release, return.

    Use with ``yield from``::

        yield from serve(node.cpu, 0.0002)   # charge 200 us of CPU
    """
    req = resource.request()
    yield req
    try:
        yield Timeout(resource.sim, service_time)
    finally:
        resource.release()
    return value


class Store:
    """Unbounded FIFO queue with event-based ``get``."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item (FIFO)."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> list:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
