"""Simulated datacenter network.

Models the paper's setup (Appendix C): servers on a rack-level 1-GbE
switch, clients on a second rack, reliable in-order messaging over TCP
(Appendix A.1).  Concretely:

* every ordered pair of endpoints is a FIFO channel — message *i* is
  delivered before message *i + 1* (TCP in-order semantics);
* per-message latency = ``base + size / bandwidth + jitter`` where jitter
  is drawn from a deterministic per-network RNG stream;
* messages to a crashed endpoint are silently dropped (the sender learns
  about failures through acks/timeouts/coordination service, exactly as
  Spinnaker does);
* network partitions drop messages between blocked pairs — symmetric by
  default, or one-directional (``block(a, b, symmetric=False)``) to model
  asymmetric partitions;
* per-ordered-pair fault injection for chaos testing: a drop probability
  (lossy links) and an extra fixed delay (latency spikes), plus a
  network-wide ``extra_delay`` knob.

A small request/reply (RPC) layer is included because both datastores and
the benchmark clients are built around it.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from .events import Event, SimulationError, Simulator
from .rng import RngRegistry

__all__ = ["LatencyModel", "Network", "Endpoint", "RpcTimeout", "Request"]


class RpcTimeout(Exception):
    """A :meth:`Endpoint.request` did not get a reply in time."""


class LatencyModel:
    """Latency parameters for one network.

    Defaults approximate a lightly tuned 1-GbE datacenter rack: ~120 GbE
    microseconds of fixed cost (NIC + switch + kernel) and 1 Gbit/s of
    bandwidth, so a 4 KB payload costs ~33 us of serialization.
    """

    def __init__(self, base: float = 120e-6,
                 bandwidth_bytes_per_sec: float = 125e6,
                 jitter: float = 30e-6):
        self.base = base
        self.bandwidth = bandwidth_bytes_per_sec
        self.jitter = jitter

    def delay(self, size_bytes: int, rng) -> float:
        """One-way delay for a message of ``size_bytes``."""
        transfer = size_bytes / self.bandwidth if self.bandwidth else 0.0
        jitter = rng.expovariate(1.0 / self.jitter) if self.jitter else 0.0
        return self.base + transfer + jitter

    def nominal(self, size_bytes: int = 4096,
                jitter_mult: float = 3.0) -> float:
        """Jitter-free delay estimate padded by ``jitter_mult`` mean
        jitters — for timeout budgeting, never for transmission."""
        transfer = size_bytes / self.bandwidth if self.bandwidth else 0.0
        return self.base + transfer + jitter_mult * self.jitter


class Request:
    """What an RPC handler receives: the payload plus a ``respond`` hook."""

    __slots__ = ("src", "payload", "_respond", "responded")

    def __init__(self, src: str, payload: Any,
                 respond: Callable[[Any, int], None]):
        self.src = src
        self.payload = payload
        self._respond = respond
        self.responded = False

    def respond(self, value: Any, size: int = 128) -> None:
        """Send the reply back to the requester (at most once)."""
        if self.responded:
            raise SimulationError("request already responded to")
        self.responded = True
        self._respond(value, size)


class _Envelope:
    __slots__ = ("src", "dst", "payload", "size", "req_id", "reply_to")

    def __init__(self, src: str, dst: str, payload: Any, size: int,
                 req_id: Optional[int], reply_to: Optional[int]):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size
        self.req_id = req_id
        self.reply_to = reply_to


class Network:
    """The switch: owns endpoints, channels, and the partition set."""

    def __init__(self, sim: Simulator, rng: RngRegistry,
                 latency: Optional[LatencyModel] = None, topology=None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        #: optional :class:`~repro.sim.topology.Topology`; when set,
        #: per-message delay comes from the endpoints' placements
        #: instead of the single flat ``latency`` model
        self.topology = topology
        self._rng = rng.stream("network")
        self._endpoints: Dict[str, "Endpoint"] = {}
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self._blocked: set = set()
        self._blocked_oneway: set = set()      # ordered (src, dst) pairs
        self._drop_rates: Dict[Tuple[str, str], float] = {}
        self._extra_delays: Dict[Tuple[str, str], float] = {}
        #: additive network-wide delay (latency-spike injection)
        self.extra_delay = 0.0
        self._req_ids = itertools.count(1)
        self.messages_sent = 0
        self.messages_dropped = 0

    # -- membership -----------------------------------------------------
    def endpoint(self, name: str) -> "Endpoint":
        """Create (or fetch) the endpoint for node ``name``."""
        ep = self._endpoints.get(name)
        if ep is None:
            ep = Endpoint(self, name)
            self._endpoints[name] = ep
        return ep

    def get(self, name: str) -> "Endpoint":
        try:
            return self._endpoints[name]
        except KeyError:
            raise SimulationError(f"unknown endpoint {name!r}") from None

    # -- partitions ---------------------------------------------------------
    def block(self, a: str, b: str, symmetric: bool = True) -> None:
        """Drop traffic between ``a`` and ``b``.

        Symmetric (the default) blocks both directions; with
        ``symmetric=False`` only ``a`` → ``b`` messages are dropped while
        replies ``b`` → ``a`` still flow (asymmetric partition).
        """
        if symmetric:
            self._blocked.add(frozenset((a, b)))
        else:
            self._blocked_oneway.add((a, b))

    def heal(self, a: Optional[str] = None, b: Optional[str] = None,
             symmetric: bool = True) -> None:
        """Heal one pair, or everything with no args.

        By default both directions are restored (undoing a symmetric
        ``block`` and any one-way blocks between the pair).  With
        ``symmetric=False`` only the ``a`` → ``b`` direction is
        unblocked — healing one leg of an asymmetric partition must not
        silently heal the reverse leg too (it used to).
        """
        if a is None:
            self._blocked.clear()
            self._blocked_oneway.clear()
        elif symmetric:
            self._blocked.discard(frozenset((a, b)))
            self._blocked_oneway.discard((a, b))
            self._blocked_oneway.discard((b, a))
        else:
            self._blocked_oneway.discard((a, b))

    def is_blocked(self, a: str, b: str) -> bool:
        """True when ``a`` → ``b`` traffic is blocked (directional)."""
        return (frozenset((a, b)) in self._blocked
                or (a, b) in self._blocked_oneway)

    # -- lossy / slow links (chaos injection) ---------------------------
    def set_drop_rate(self, a: str, b: str, rate: float,
                      symmetric: bool = True) -> None:
        """Drop each ``a`` → ``b`` message with probability ``rate``
        (and ``b`` → ``a`` too when symmetric).  ``rate=0`` clears."""
        pairs = [(a, b), (b, a)] if symmetric else [(a, b)]
        for pair in pairs:
            if rate > 0:
                self._drop_rates[pair] = rate
            else:
                self._drop_rates.pop(pair, None)

    def set_extra_delay(self, a: str, b: str, extra: float,
                        symmetric: bool = True) -> None:
        """Add ``extra`` seconds of one-way delay on the link.
        ``extra=0`` clears.  FIFO ordering per pair is preserved."""
        pairs = [(a, b), (b, a)] if symmetric else [(a, b)]
        for pair in pairs:
            if extra > 0:
                self._extra_delays[pair] = extra
            else:
                self._extra_delays.pop(pair, None)

    def clear_link_faults(self) -> None:
        """Remove every injected drop rate and extra delay."""
        self._drop_rates.clear()
        self._extra_delays.clear()
        self.extra_delay = 0.0

    # -- timeout budgeting ----------------------------------------------
    def rtt_bound(self, size_bytes: int = 4096) -> float:
        """Upper estimate of one request/reply round trip on this
        network (jitter-padded, worst link).  Protocol layers derive
        their per-try RPC timeouts from this instead of hardcoding
        LAN-scale constants — on a WAN topology a literal ``1.0``/``2.0``
        second budget turns every slow-but-healthy link into a spurious
        :class:`RpcTimeout` retry storm."""
        if self.topology is not None:
            return self.topology.rtt_bound(size_bytes)
        return 2.0 * self.latency.nominal(size_bytes)

    # -- transmission -----------------------------------------------------
    def _transmit(self, env: _Envelope) -> None:
        """Send one envelope.  This runs once per simulated message, so
        the fault-injection checks are guarded by container emptiness
        tests: a healthy network (no partitions, no lossy/slow links —
        the common case) pays no frozenset or dict-lookup cost per
        message.  The RNG draw order is unchanged: the drop-rate draw
        happens only when a rate is configured for the pair, exactly as
        the unguarded lookups did."""
        self.messages_sent += 1
        src_ep = self._endpoints.get(env.src)
        if src_ep is None or not src_ep.alive:
            self.messages_dropped += 1
            return
        if ((self._blocked or self._blocked_oneway)
                and self.is_blocked(env.src, env.dst)):
            self.messages_dropped += 1
            return
        if self._drop_rates:
            rate = self._drop_rates.get((env.src, env.dst))
            if rate and self._rng.random() < rate:
                self.messages_dropped += 1
                return
        if self.topology is None:
            delay = self.latency.delay(env.size, self._rng)
        else:
            # Same RNG consumption: Topology.delay draws exactly one
            # jitter sample per message, like the flat model above.
            delay = self.topology.delay(env.src, env.dst, env.size,
                                        self._rng)
        delay += self.extra_delay
        if self._extra_delays:
            delay += self._extra_delays.get((env.src, env.dst), 0.0)
        arrival = self.sim.now + delay
        # FIFO per ordered pair: never deliver before an earlier message.
        key = (env.src, env.dst)
        last = self._last_delivery.get(key)
        if last is not None and last > arrival:
            arrival = last
        self._last_delivery[key] = arrival
        self.sim.call_at(arrival, lambda: self._deliver(env))

    def _deliver(self, env: _Envelope) -> None:
        ep = self._endpoints.get(env.dst)
        if ep is None or not ep.alive:
            self.messages_dropped += 1
            return
        ep._receive(env)


class Endpoint:
    """One node's attachment to the network."""

    def __init__(self, network: Network, name: str):
        self.network = network
        self.sim = network.sim
        self.name = name
        self.alive = True
        self._handler: Optional[Callable[[Request], None]] = None
        self._pending: Dict[int, Event] = {}
        self._timeouts: Dict[int, Any] = {}     # req_id -> scheduler entry
        #: replies that arrived after their request timed out (or after a
        #: crash cleared it) and were discarded — chaos runs assert these
        #: never resume a waiter twice
        self.stale_replies = 0

    # -- wiring ----------------------------------------------------------
    def on_request(self, handler: Callable[[Request], None]) -> None:
        """Install the (single) inbound-request handler."""
        self._handler = handler

    # -- lifecycle ----------------------------------------------------------
    def crash(self) -> None:
        """Take the endpoint off the network; pending RPCs never resolve."""
        self.alive = False
        self._pending.clear()
        for entry in self._timeouts.values():
            self.sim.cancel(entry)
        self._timeouts.clear()

    def restart(self) -> None:
        self.alive = True

    # -- messaging -----------------------------------------------------------
    def send(self, dst: str, payload: Any, size: int = 256) -> None:
        """Fire-and-forget one-way message."""
        if not self.alive:
            return
        self.network._transmit(
            _Envelope(self.name, dst, payload, size, None, None))

    def request(self, dst: str, payload: Any, size: int = 256,
                timeout: Optional[float] = None) -> Event:
        """Send a request; the returned event fires with the reply value.

        If ``timeout`` is given and no reply arrives in time the event
        fails with :class:`RpcTimeout`.  Without a timeout, a request to a
        node that dies before replying never resolves — callers in the
        replication protocol always pair this with quorum waits or
        failure-detector callbacks, as the paper's protocol does.
        """
        ev = Event(self.sim)
        if not self.alive:
            ev.fail(RpcTimeout(f"{self.name} is down"))
            return ev
        req_id = next(self.network._req_ids)
        self._pending[req_id] = ev
        self.network._transmit(
            _Envelope(self.name, dst, payload, size, req_id, None))
        if timeout is not None:
            def _expire() -> None:
                # Remove the pending entry *before* failing it: a reply
                # that arrives later finds nothing and is discarded, so
                # the waiting process is resumed exactly once.
                self._timeouts.pop(req_id, None)
                pending = self._pending.pop(req_id, None)
                if pending is not None and not pending.triggered:
                    pending.fail(RpcTimeout(
                        f"rpc {self.name}->{dst} timed out after {timeout}s"))
            self._timeouts[req_id] = self.sim.schedule(timeout, _expire)
        return ev

    # -- inbound ------------------------------------------------------------
    def _receive(self, env: _Envelope) -> None:
        if env.reply_to is not None:
            entry = self._timeouts.pop(env.reply_to, None)
            if entry is not None:
                self.sim.cancel(entry)
            ev = self._pending.pop(env.reply_to, None)
            if ev is None or ev.triggered:
                # Late reply: the request already timed out (or the
                # endpoint restarted).  Drop it on the floor.
                self.stale_replies += 1
                return
            ev.succeed(env.payload)
            return
        if self._handler is None:
            return

        def _respond(value: Any, size: int, _env: _Envelope = env) -> None:
            if not self.alive or _env.req_id is None:
                return
            self.network._transmit(_Envelope(
                self.name, _env.src, value, size, None, _env.req_id))

        self._handler(Request(env.src, env.payload, _respond))
