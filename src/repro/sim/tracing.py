"""Structured protocol tracing.

A :class:`Tracer` collects timestamped, categorized protocol events
(elections, takeovers, catch-ups, crashes, flushes...) into a bounded
ring buffer, with optional live subscribers.  The default
:class:`NullTracer` makes tracing free when off; pass
``SpinnakerCluster(tracer=Tracer(...))`` to turn it on.

Categories used by the core:

========== =====================================================
category    events
========== =====================================================
node        boot, crash, restart, disk-loss
election    round start, candidate announce, winner, follower
takeover    start, follower caught up, re-proposals, open
catchup     request, ingest (records / sstables / truncations)
replication leadership transfers, write blocks
storage     flush, checkpoint, log GC
========== =====================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

__all__ = ["TraceEvent", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event."""

    time: float
    category: str
    node: str
    message: str
    fields: Dict = field(default_factory=dict)

    def format(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return (f"[{self.time:10.4f}] {self.category:<11s} "
                f"{self.node:<8s} {self.message}"
                + (f"  ({extras})" if extras else ""))


class NullTracer:
    """The default: drops everything at near-zero cost."""

    enabled = False

    def emit(self, category: str, node: str, message: str,
             **fields) -> None:
        pass

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        return []

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        raise RuntimeError("cannot subscribe to a NullTracer; "
                           "pass a real Tracer to the cluster")


class Tracer:
    """Bounded in-memory event collector with category filters."""

    enabled = True

    def __init__(self, sim=None, categories: Optional[Iterable[str]] = None,
                 max_events: int = 100_000):
        #: bound automatically by SpinnakerCluster when left None
        self.sim = sim
        self.categories = set(categories) if categories else None
        self.max_events = max_events
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, category: str, node: str, message: str,
             **fields) -> None:
        if self.categories is not None and category not in self.categories:
            self.dropped += 1
            return
        if len(self._events) == self.max_events:
            self.dropped += 1
        now = self.sim.now if self.sim is not None else 0.0
        event = TraceEvent(time=now, category=category,
                           node=node, message=message, fields=fields)
        self._events.append(event)
        for callback in self._subscribers:
            callback(event)

    # ------------------------------------------------------------------
    def events(self, category: Optional[str] = None,
               node: Optional[str] = None,
               since: float = 0.0) -> List[TraceEvent]:
        return [e for e in self._events
                if (category is None or e.category == category)
                and (node is None or e.node == node)
                and e.time >= since]

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback(event)`` for every future matching event."""
        self._subscribers.append(callback)

    def format(self, **filters) -> str:
        return "\n".join(e.format() for e in self.events(**filters))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
