"""Measurement utilities: latency recorders, histograms, throughput.

The paper reports *average operation latency* (client round trip) against
*system load* (measured completed requests/second), sweeping load by
doubling the number of client threads (Appendix C).  These classes collect
exactly those quantities, with warm-up exclusion so queue build-up during
ramp-up does not pollute the steady-state averages.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["LatencyRecorder", "Histogram", "summarize"]


class Histogram:
    """Fixed set of samples with percentile/summary helpers."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        #: sorted view, rebuilt lazily; ``add`` invalidates.  Percentile
        #: queries are O(1)+amortized sort instead of a sort per call,
        #: which matters once the phase aggregator asks for p95 of every
        #: (op, phase) histogram after every bench run.
        self._sorted: Optional[List[float]] = None

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None

    def _sorted_view(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return sum(self._samples) / len(self._samples)

    def stddev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples) / (n - 1))

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self._samples:
            return float("nan")
        data = self._sorted_view()
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def min(self) -> float:
        return min(self._samples) if self._samples else float("nan")

    def max(self) -> float:
        return max(self._samples) if self._samples else float("nan")


class LatencyRecorder:
    """Per-operation latency samples, bucketed by operation label.

    ``warmup`` seconds of simulated time are discarded; ``record`` must be
    given the *completion* time of the operation.
    """

    def __init__(self, warmup: float = 0.0):
        self.warmup = warmup
        self._hist: Dict[str, Histogram] = {}
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        self.dropped_warmup = 0

    def record(self, op: str, latency: float, completed_at: float) -> None:
        if completed_at < self.warmup:
            self.dropped_warmup += 1
            return
        hist = self._hist.get(op)
        if hist is None:
            hist = self._hist[op] = Histogram()
        hist.add(latency)
        if self._first_ts is None:
            self._first_ts = completed_at
        self._last_ts = completed_at

    # -- summaries -------------------------------------------------------
    def ops(self) -> Sequence[str]:
        return list(self._hist)

    def histogram(self, op: str) -> Histogram:
        return self._hist.setdefault(op, Histogram())

    def count(self, op: Optional[str] = None) -> int:
        if op is not None:
            return self.histogram(op).count
        return sum(h.count for h in self._hist.values())

    def mean_latency(self, op: Optional[str] = None) -> float:
        if op is not None:
            return self.histogram(op).mean()
        total = self.count()
        if total == 0:
            return float("nan")
        return sum(h.mean() * h.count for h in self._hist.values()) / total

    def throughput(self) -> float:
        """Completed operations per second over the measured window."""
        if (self._first_ts is None or self._last_ts is None
                or self._last_ts <= self._first_ts):
            return 0.0
        return self.count() / (self._last_ts - self._first_ts)


def summarize(recorder: LatencyRecorder) -> Dict[str, Dict[str, float]]:
    """A plain-dict summary, convenient for report printing and tests."""
    out: Dict[str, Dict[str, float]] = {}
    for op in recorder.ops():
        hist = recorder.histogram(op)
        out[op] = {
            "count": hist.count,
            "mean_ms": hist.mean() * 1e3,
            "p50_ms": hist.percentile(50) * 1e3,
            "p95_ms": hist.percentile(95) * 1e3,
            "p99_ms": hist.percentile(99) * 1e3,
            "max_ms": hist.max() * 1e3,
        }
    return out
