"""Deterministic discrete-event simulation substrate.

Everything distributed in this reproduction — Spinnaker nodes, the
Cassandra-style baseline, the coordination service, benchmark clients —
runs on this kernel.  See DESIGN.md ("Substitutions") for why a calibrated
simulation stands in for the paper's physical cluster.
"""

from .events import Event, SimulationError, Simulator, StopSimulation
from .process import (AllOf, AnyOf, Interrupt, Process, Timeout, all_of,
                      any_of, quorum, spawn, timeout)
from .resources import Resource, Store, serve
from .rng import RngRegistry
from .network import Endpoint, LatencyModel, Network, Request, RpcTimeout
from .topology import Placement, Topology
from .disk import DataDisk, DiskProfile, LogDevice
from .metrics import Histogram, LatencyRecorder, summarize
from .failure import FailureSchedule
from .tracing import NullTracer, TraceEvent, Tracer

__all__ = [
    "Simulator", "Event", "SimulationError", "StopSimulation",
    "Process", "Timeout", "Interrupt", "AllOf", "AnyOf",
    "spawn", "timeout", "all_of", "any_of", "quorum",
    "Resource", "Store", "serve",
    "RngRegistry",
    "Network", "Endpoint", "LatencyModel", "Request", "RpcTimeout",
    "Topology", "Placement",
    "LogDevice", "DataDisk", "DiskProfile",
    "Histogram", "LatencyRecorder", "summarize",
    "FailureSchedule",
    "Tracer", "NullTracer", "TraceEvent",
]
