"""Disk models: the logging device (with group commit) and the data disk.

The paper's write experiments are bottlenecked by commit-time log forces
(Appendix C): Cassandra's log manager — reused by Spinnaker — lacks
preallocated log files, so file growth causes filesystem metadata updates
and *unwanted seeks* on the dedicated SATA logging disk.  Storing the log
on an SSD removes the seeks and drops write latency to ~6 ms (Fig. 13);
committing to main-memory logs drops it to ~2 ms (Fig. 16).

:class:`LogDevice` reproduces this bottleneck:

* the device performs one *force operation* at a time;
* force requests arriving while the device is busy accumulate and are
  written together by the next operation (**group commit**, [13] in the
  paper); the ablation flag ``group_commit=False`` serializes them instead;
* per-operation latency is drawn from a :class:`DiskProfile` — rotational
  delay + transfer time + a periodic file-growth seek penalty for the
  SATA profile.

Three built-in profiles correspond to the paper's three logging setups:
``DiskProfile.sata_log()`` (Figs. 9, 12, 14, 15), ``DiskProfile.ssd_log()``
(Fig. 13), and ``DiskProfile.memory_log()`` (Fig. 16).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .events import Event, Simulator
from .rng import RngRegistry

__all__ = ["DiskProfile", "LogDevice", "DataDisk"]


class DiskProfile:
    """Latency parameters for one logging device.

    Parameters
    ----------
    min_latency, max_latency:
        Uniform range of the base per-operation latency (models rotational
        positioning for magnetic disks; a tight band for SSDs).
    transfer_rate:
        Sequential write bandwidth in bytes/second.
    seek_penalty, seek_interval:
        Every ``seek_interval`` bytes of file growth adds ``seek_penalty``
        seconds to one operation — the missing-preallocation metadata seek
        the paper blames for its poor absolute write latency.
    name:
        Used in reports.
    """

    def __init__(self, name: str, min_latency: float, max_latency: float,
                 transfer_rate: float, seek_penalty: float = 0.0,
                 seek_interval: int = 0):
        self.name = name
        self.min_latency = min_latency
        self.max_latency = max_latency
        self.transfer_rate = transfer_rate
        self.seek_penalty = seek_penalty
        self.seek_interval = seek_interval

    # -- canned profiles -------------------------------------------------
    @classmethod
    def sata_log(cls) -> "DiskProfile":
        """Dedicated SATA logging disk, write cache off, no preallocation."""
        return cls("sata", min_latency=2.0e-3, max_latency=10.5e-3,
                   transfer_rate=80e6, seek_penalty=11.0e-3,
                   seek_interval=192 * 1024)

    @classmethod
    def ssd_log(cls) -> "DiskProfile":
        """FusionIO-style NAND flash device (Fig. 13)."""
        return cls("ssd", min_latency=0.15e-3, max_latency=0.35e-3,
                   transfer_rate=400e6)

    @classmethod
    def ec2_log(cls) -> "DiskProfile":
        """EC2 local disk with the write cache on (§D.2 — the paper could
        not disable it): forces return from cache, no metadata seeks."""
        return cls("ec2", min_latency=0.6e-3, max_latency=3.0e-3,
                   transfer_rate=100e6)

    @classmethod
    def memory_log(cls) -> "DiskProfile":
        """Main-memory log; a background thread drains it to disk (§D.6.2)."""
        return cls("memory", min_latency=3e-6, max_latency=8e-6,
                   transfer_rate=5e9)

    # -- latency -----------------------------------------------------------
    def op_latency(self, batch_bytes: int, grew_past_boundary: bool,
                   rng) -> float:
        latency = rng.uniform(self.min_latency, self.max_latency)
        if self.transfer_rate:
            latency += batch_bytes / self.transfer_rate
        if grew_past_boundary and self.seek_penalty:
            latency += self.seek_penalty
        return latency


class LogDevice:
    """A node's dedicated logging device with group commit."""

    def __init__(self, sim: Simulator, rng: RngRegistry, name: str,
                 profile: Optional[DiskProfile] = None,
                 group_commit: bool = True):
        self.sim = sim
        self.name = name
        self.profile = profile or DiskProfile.sata_log()
        self.group_commit = group_commit
        self._rng = rng.stream(f"disk:{name}")
        self._pending: List[Tuple[int, Event]] = []
        self._busy = False
        self._file_pos = 0
        self._last_seek_boundary = 0
        self.forces_completed = 0
        self.ops_performed = 0
        self.bytes_written = 0
        self.alive = True

    # -- public API ----------------------------------------------------------
    def force(self, nbytes: int) -> Event:
        """Durably write ``nbytes``; the event fires when data is on media."""
        ev = Event(self.sim)
        if not self.alive:
            return ev  # never fires: node is down
        self._pending.append((nbytes, ev))
        if not self._busy:
            self._start_op()
        return ev

    def append_noforce(self, nbytes: int) -> None:
        """A non-forced append (e.g. the last-committed-LSN record, §5).

        It rides along with the next force at no extra cost; only file
        growth is tracked.
        """
        self._file_pos += nbytes
        self.bytes_written += nbytes

    def crash(self) -> None:
        """Power loss: in-flight and queued forces never complete."""
        self.alive = False
        self._pending.clear()

    def restart(self) -> None:
        self.alive = True
        self._busy = False
        # A restarted log appends at the recovered end of the file; the
        # exact position does not matter for latency modelling.

    # -- internals -----------------------------------------------------------
    def _start_op(self) -> None:
        if not self._pending or not self.alive:
            self._busy = False
            return
        self._busy = True
        if self.group_commit:
            batch, self._pending = self._pending, []
        else:
            batch = [self._pending.pop(0)]
        batch_bytes = sum(n for n, _ in batch)
        self._file_pos += batch_bytes
        self.bytes_written += batch_bytes
        grew = False
        if self.profile.seek_interval:
            boundary = self._file_pos // self.profile.seek_interval
            if boundary > self._last_seek_boundary:
                self._last_seek_boundary = boundary
                grew = True
        latency = self.profile.op_latency(batch_bytes, grew, self._rng)
        self.sim.schedule(latency, lambda: self._finish_op(batch))

    def _finish_op(self, batch: List[Tuple[int, Event]]) -> None:
        self.ops_performed += 1
        if not self.alive:
            return  # crashed mid-operation: the forces are lost
        for _, ev in batch:
            if not ev.triggered:
                ev.succeed()
            self.forces_completed += 1
        self._start_op()


class DataDisk:
    """The striped data volume holding SSTables.

    The paper's read experiments keep the working set cached in memory, so
    reads rarely touch this device; it exists for cold reads and for
    charging SSTable flush/compaction I/O time.
    """

    def __init__(self, sim: Simulator, rng: RngRegistry, name: str,
                 read_latency: float = 6.0e-3,
                 transfer_rate: float = 300e6):
        self.sim = sim
        self.name = name
        self.read_latency = read_latency
        self.transfer_rate = transfer_rate
        self._rng = rng.stream(f"datadisk:{name}")
        self.reads = 0
        self.bytes_read = 0

    def read(self, nbytes: int) -> Event:
        """A random read of ``nbytes`` (cold SSTable block)."""
        self.reads += 1
        self.bytes_read += nbytes
        latency = (self._rng.uniform(0.5, 1.5) * self.read_latency
                   + nbytes / self.transfer_rate)
        ev = Event(self.sim)
        self.sim.schedule(latency, ev.succeed)
        return ev
