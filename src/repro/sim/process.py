"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Each yield suspends the process until the event triggers; the
event's value becomes the result of the ``yield`` expression and a failed
event is re-raised inside the generator.  A process is itself an event that
succeeds with the generator's return value, so processes compose.

Example::

    def writer(sim, disk):
        yield sim_timeout(sim, 0.5)            # sleep 500 ms
        lsn = yield disk.force(4096)           # wait for a log force
        return lsn

    proc = Process(sim, writer(sim, disk))
    sim.run()
    assert proc.ok

Hot path
--------
``yield timeout(sim, dt)`` is by far the most common scheduling idiom
(every CPU charge, sleep, and retry backoff), so it is special-cased
end to end (see DESIGN.md, "Kernel hot paths"):

* :class:`Timeout` pushes its heap entry directly (no ``Event`` →
  ``Simulator.schedule`` indirection, no per-timeout closure) and stores
  its value up front;
* when a :class:`Process` yields a pending Timeout that nothing else is
  watching, it registers itself as the Timeout's single *waiter* instead
  of appending to the callback list; the fire path then resumes the
  generator directly.  The waiter resume keeps the exact semantics of
  the callback path: the identity check against ``self._target`` ignores
  stale wake-ups after an interrupt, and callbacks added after the
  hijack (e.g. a second process yielding the same Timeout) still run, in
  registration order, after the waiter.

Neither shortcut changes simulated timestamps, priorities, or sequence
numbers, so traces are bit-identical with the straightforward path.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, Iterable, List, Optional

from .events import NORMAL, URGENT, Event, SimulationError, Simulator

__all__ = [
    "Process",
    "Timeout",
    "Interrupt",
    "ProcessKilled",
    "AllOf",
    "AnyOf",
    "spawn",
    "timeout",
    "all_of",
    "any_of",
]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(SimulationError):
    """A process ended because it did not handle an interrupt.

    Distinguished from ordinary failures so supervisors (e.g. a node
    killing its handlers on crash) can tell deliberate kills from bugs.
    """


class Timeout(Event):
    """An event that succeeds after a fixed delay."""

    __slots__ = ("_entry", "_waiter")

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        # Inlined Event.__init__ + Simulator.schedule: this constructor
        # runs once per simulated sleep/CPU charge, and the wrapper
        # calls plus the per-timeout trigger closure are measurable at
        # that volume.  The entry layout and seq ordering are identical
        # to Simulator.schedule's.
        self.sim = sim
        self._ok: Optional[bool] = None
        self._value = value
        self._callbacks: Optional[list] = []
        self._defused = False
        self._waiter: Optional["Process"] = None
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = sim._seq
        sim._seq = seq + 1
        self._entry = entry = [sim._now + delay, NORMAL, seq, self._fire]
        heappush(sim._heap, entry)

    def _fire(self) -> None:
        """Trigger from the heap: succeed, waking the waiter first."""
        if self._ok is not None:
            return  # already triggered explicitly (e.g. succeed())
        self._ok = True
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            # Stale wake-up check, same as Process._on_target: if the
            # process was interrupted away from us, leave it alone.
            if waiter._target is self:
                waiter._target = None
                waiter._step(self._value, None, None)
        callbacks = self._callbacks
        self._callbacks = None
        for cb in callbacks or ():
            cb(self)

    # Explicit (non-heap) triggering is rare for Timeouts; convert the
    # fast-path waiter back into an ordinary first callback so the
    # waiter-first wake order matches _fire's.
    def _flush_waiter(self) -> None:
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            if self._callbacks is not None:
                self._callbacks.insert(0, waiter._on_target)

    def succeed(self, value: Any = None) -> "Event":
        self._flush_waiter()
        return Event.succeed(self, value)

    def fail(self, exc: BaseException) -> "Event":
        self._flush_waiter()
        return Event.fail(self, exc)


class Process(Event):
    """Drives a generator, treating each yielded value as an event."""

    __slots__ = ("_gen", "_send", "_throw", "_target", "name")

    def __init__(self, sim: Simulator, gen: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError(f"Process needs a generator, got {gen!r}")
        self._gen = gen
        self._send = gen.send      # bound-method cache for the step loop
        self._throw = gen.throw
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Start the process at the current time, but via the heap so that
        # creation order is preserved deterministically.
        sim.schedule(0.0, self._resume_start, priority=URGENT)

    # -- lifecycle ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting an already-finished process is a no-op.
        """
        if self.triggered:
            return
        target, self._target = self._target, None
        self.sim.schedule(
            0.0, lambda: self._step(None, Interrupt(cause), target),
            priority=URGENT)

    # -- internals -----------------------------------------------------------
    def _resume_start(self) -> None:
        if not self.triggered:
            self._step(None, None, None)

    def _on_target(self, event: Event) -> None:
        if self._target is not event:
            return  # stale wake-up (we were interrupted away from it)
        self._target = None
        if event._ok:
            self._step(event._value, None, None)
        else:
            event.defuse()
            self._step(None, event._value, None)

    def _step(self, value: Any, exc: Optional[BaseException],
              detached: Optional[Event]) -> None:
        """Advance the generator by one yield."""
        if self._ok is not None:
            return
        # ``detached`` is the event we abandoned due to an interrupt; we
        # must ignore its eventual trigger, which _on_target (and the
        # Timeout waiter fast path) handle via the identity check on
        # self._target.
        del detached
        try:
            if exc is None:
                target = self._send(value)
            else:
                target = self._throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.fail(ProcessKilled(
                f"process {self.name!r} did not handle {unhandled!r}"))
            return
        except BaseException as err:  # noqa: BLE001 - propagate into event
            self.fail(err)
            return
        if type(target) is Timeout:
            # Fast path: a pending, unwatched Timeout resumes us straight
            # from its fire callback — no callback-list round trip.
            if (target._ok is None and target._waiter is None
                    and not target._callbacks):
                self._target = target
                target._waiter = self
                return
        elif not isinstance(target, Event):
            self._gen.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._target = target
        target.add_callback(self._on_target)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self._events: List[Event] = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds with the list of values once every child succeeds.

    Fails as soon as any child fails (remaining children keep running).
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(_Condition):
    """Succeeds with (index, value) of the first child that succeeds."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if event._ok:
            self.succeed((self._events.index(event), event._value))
        else:
            event.defuse()
            self.fail(event._value)


class Quorum(Event):
    """Succeeds once ``need`` of the child events have succeeded.

    Used to model quorum waits (e.g. "wait for acks from any 2 of 3
    replicas").  Child failures count against the quorum; the Quorum event
    fails only if success becomes impossible.
    """

    __slots__ = ("_need", "_got", "_left", "_values")

    def __init__(self, sim: Simulator, events: Iterable[Event], need: int):
        super().__init__(sim)
        events = list(events)
        if need > len(events):
            raise SimulationError(
                f"quorum of {need} impossible with {len(events)} events")
        self._need = need
        self._got = 0
        self._left = len(events)
        self._values: List[Any] = []
        if need <= 0:
            self.succeed([])
            return
        for ev in events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if not event._ok:
            event.defuse()
        if self.triggered:
            return
        self._left -= 1
        if event._ok:
            self._got += 1
            self._values.append(event._value)
            if self._got >= self._need:
                self.succeed(list(self._values))
                return
        if self._got + self._left < self._need:
            self.fail(SimulationError(
                f"quorum unreachable: {self._got} of {self._need}"))


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def spawn(sim: Simulator, gen: Generator[Event, Any, Any],
          name: str = "") -> Process:
    """Start a new process from a generator."""
    return Process(sim, gen, name=name)


def timeout(sim: Simulator, delay: float, value: Any = None) -> Timeout:
    """An event that fires ``delay`` seconds from now."""
    return Timeout(sim, delay, value)


def all_of(sim: Simulator, events: Iterable[Event]) -> AllOf:
    """An event that succeeds once every child succeeds (see AllOf)."""
    return AllOf(sim, events)


def any_of(sim: Simulator, events: Iterable[Event]) -> AnyOf:
    """An event that succeeds with the first child to succeed."""
    return AnyOf(sim, events)


def quorum(sim: Simulator, events: Iterable[Event], need: int) -> Quorum:
    """An event that succeeds once ``need`` children have succeeded."""
    return Quorum(sim, events, need)
