"""Command-line entry point.

``python -m repro``            — overview + experiment list
``python -m repro bench ...``  — run experiments (see repro.bench.report)
``python -m repro demo``       — a 30-second guided failover demo
``python -m repro chaos``      — randomized nemesis + invariant audit
                                 (--seed N --duration S [--nodes K]
                                 [--shrink]); same seed, same output
``python -m repro lint``       — determinism & protocol static checks
                                 ([path] [--json] [--rule R]
                                 [--write-baseline]); exits nonzero on
                                 new findings
``python -m repro trace``      — causal request tracing: span trees and
                                 per-phase latency attribution
                                 ([--phases] [--scale S] [--workload W]
                                 [--disk D]); see OBSERVABILITY.md
``python -m repro profile``    — cProfile a named experiment at small
                                 scale, print the hot-path report
                                 ([experiment] [--scale S] [--sort KEY]
                                 [--limit N])
``python -m repro tune``       — offline self-tuning of protocol knobs
                                 (coordinate descent over the knob
                                 registry, phase-weighted objective,
                                 deterministic per seed; [--profile P]
                                 [--seed N] [--max-trials K]
                                 [--ledger F] [--write-config]); see
                                 TUNING.md
"""

from __future__ import annotations

import sys


def _overview() -> None:
    from .bench.experiments import ALL_EXPERIMENTS
    print(__doc__)
    print("Experiments (python -m repro bench <name> [--scale S]):")
    for name, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22s} {doc}")


def _demo() -> None:
    from .core import SpinnakerCluster, SpinnakerConfig
    from .sim.disk import DiskProfile
    from .sim.process import spawn
    from .sim.tracing import Tracer

    tracer = Tracer()
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=0.3)
    cluster = SpinnakerCluster(n_nodes=5, config=config, seed=7,
                               tracer=tracer)
    cluster.start()
    client = cluster.client()

    def session():
        yield from client.put(b"demo", b"v", b"hello")
        got = yield from client.get(b"demo", b"v", consistent=True)
        return got

    proc = spawn(cluster.sim, session())
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="demo ops")
    print(f"wrote and read back: {proc.result().value!r}\n")
    t_kill = cluster.sim.now
    victim = cluster.kill_leader(0)
    cluster.run_until(lambda: cluster.leader_of(0) is not None,
                      limit=30.0, what="failover")
    print(f"killed {victim}; new leader of cohort 0: "
          f"{cluster.leader_of(0)}")
    print("\nprotocol trace of the failover:")
    print(tracer.format(since=t_kill))


def _chaos(rest) -> int:
    import argparse

    from .chaos import (ChaosConfig, format_regression_test, run_chaos,
                        shrink_run)

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Randomized nemesis with invariant auditing. "
                    "Deterministic: the same seed and flags reproduce "
                    "the run byte-for-byte.")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=30.0,
                        help="storm length in simulated seconds")
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--mean-fault-gap", type=float, default=2.0,
                        help="MTTF budget (mean seconds between faults)")
    parser.add_argument("--mean-repair", type=float, default=1.5,
                        help="MTTR budget (mean outage seconds)")
    parser.add_argument("--dcs", type=int, default=1,
                        help="datacenters to spread the cluster over "
                             "(>1 adds WAN links, DC-spread replica "
                             "placement, and DC-level fault kinds)")
    parser.add_argument("--wan-one-way", type=float, default=0.02,
                        help="base one-way WAN propagation delay (s)")
    parser.add_argument("--shrink", action="store_true",
                        help="on violation, minimize the schedule and "
                             "print a regression test")
    args = parser.parse_args(rest)
    config = ChaosConfig(n_nodes=args.nodes, duration=args.duration,
                         mean_fault_gap=args.mean_fault_gap,
                         mean_repair=args.mean_repair,
                         n_dcs=args.dcs, wan_one_way=args.wan_one_way)
    report = run_chaos(args.seed, config)
    print(report.format())
    if report.ok:
        return 0
    if args.shrink:
        print("\nshrinking the failing schedule...")
        result = shrink_run(args.seed, config)
        print(f"minimized {len(result.original)} -> "
              f"{len(result.minimized)} events in "
              f"{result.replays} replays\n")
        print(format_regression_test(result))
    return 1


def _profile(rest) -> int:
    import argparse
    import cProfile
    import pstats

    from .bench.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Run one experiment under cProfile and print the "
                    "hottest functions.  Defaults to a small scale: the "
                    "hot paths are the same as at full scale (the same "
                    "code runs, just fewer times), so profiling stays "
                    "cheap enough to iterate on.")
    parser.add_argument("experiment", nargs="?", default="fig9",
                        help="experiment id (see 'python -m repro'); "
                             "default fig9, the write path")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="experiment scale (default 0.05, the "
                             "bench-smoke tier)")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"],
                        help="stat to sort the report by")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows to print (default 25)")
    args = parser.parse_args(rest)
    fn = ALL_EXPERIMENTS.get(args.experiment)
    if fn is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"choices: {', '.join(ALL_EXPERIMENTS)}")
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    result = fn(scale=args.scale)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    print(f"profiled {args.experiment} at scale {args.scale}: "
          f"shape {'OK' if result.passed else 'MISMATCH'}")
    return 0


def main(argv) -> int:
    if not argv:
        _overview()
        return 0
    command, rest = argv[0], argv[1:]
    if command == "bench":
        from .bench.report import main as bench_main
        return bench_main(rest)
    if command == "demo":
        _demo()
        return 0
    if command == "chaos":
        return _chaos(rest)
    if command == "lint":
        from .analysis.cli import main as lint_main
        return lint_main(rest)
    if command == "trace":
        from .obs.cli import main as trace_main
        return trace_main(rest)
    if command == "profile":
        return _profile(rest)
    if command == "tune":
        from .tune.cli import main as tune_main
        return tune_main(rest)
    print(f"unknown command {command!r}; try 'bench', 'demo', 'chaos', "
          f"'lint', 'trace', 'profile' or 'tune'")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
