"""Command-line entry point.

``python -m repro``            — overview + experiment list
``python -m repro bench ...``  — run experiments (see repro.bench.report)
``python -m repro demo``       — a 30-second guided failover demo
"""

from __future__ import annotations

import sys


def _overview() -> None:
    from .bench.experiments import ALL_EXPERIMENTS
    print(__doc__)
    print("Experiments (python -m repro bench <name> [--scale S]):")
    for name, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<22s} {doc}")


def _demo() -> None:
    from .core import SpinnakerCluster, SpinnakerConfig
    from .sim.disk import DiskProfile
    from .sim.process import spawn
    from .sim.tracing import Tracer

    tracer = Tracer()
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=0.3)
    cluster = SpinnakerCluster(n_nodes=5, config=config, seed=7,
                               tracer=tracer)
    cluster.start()
    client = cluster.client()

    def session():
        yield from client.put(b"demo", b"v", b"hello")
        got = yield from client.get(b"demo", b"v", consistent=True)
        return got

    proc = spawn(cluster.sim, session())
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="demo ops")
    print(f"wrote and read back: {proc.result().value!r}\n")
    t_kill = cluster.sim.now
    victim = cluster.kill_leader(0)
    cluster.run_until(lambda: cluster.leader_of(0) is not None,
                      limit=30.0, what="failover")
    print(f"killed {victim}; new leader of cohort 0: "
          f"{cluster.leader_of(0)}")
    print("\nprotocol trace of the failover:")
    print(tracer.format(since=t_kill))


def main(argv) -> int:
    if not argv:
        _overview()
        return 0
    command, rest = argv[0], argv[1:]
    if command == "bench":
        from .bench.report import main as bench_main
        return bench_main(rest)
    if command == "demo":
        _demo()
        return 0
    print(f"unknown command {command!r}; try 'bench' or 'demo'")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
