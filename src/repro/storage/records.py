"""Log record types and their binary wire format.

Four record kinds appear in a node's shared write-ahead log:

* :class:`WriteRecord` — one client write (put / delete / conditional
  variants all log the same record shape; §5).  Forced at append time.
* :class:`CommitMarker` — the *last committed LSN* saved when a commit
  message is processed; written with a **non-forced** append (§5).
* :class:`CheckpointRecord` — marks that memtable state up to an LSN has
  been captured in SSTables, bounding local recovery (§6.1).
* :class:`CatchupMarker` — durable catch-up progress: records at or
  below ``floor`` arrived as shipped SSTables during chunked catch-up
  (§6.1), so a restart resumes the install from ``floor`` instead of
  from scratch, and log holes below it are legitimate.

The binary encoding exists so record sizes charged to the simulated log
device are honest and so serialization round-trips can be tested; the
in-simulation log keeps the decoded objects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from .lsn import LSN

__all__ = ["WriteRecord", "CommitMarker", "CheckpointRecord",
           "CatchupMarker", "LogRecord", "encode_record", "decode_record"]

_HEADER = struct.Struct(">BQdH")  # kind, lsn, timestamp, cohort_id
_KIND_WRITE = 1
_KIND_COMMIT = 2
_KIND_CHECKPOINT = 3
_KIND_CATCHUP = 4


@dataclass(frozen=True)
class WriteRecord:
    """A replicated single-row write.

    ``tombstone`` distinguishes deletes; ``version`` is the
    store-managed, monotonically increasing per-column version number
    exposed through ``get`` and checked by ``conditionalPut`` (§3).
    """

    lsn: LSN
    cohort_id: int
    key: bytes
    colname: bytes
    value: Optional[bytes]
    version: int
    timestamp: float = 0.0
    tombstone: bool = False

    def encoded_size(self) -> int:
        value_len = len(self.value) if self.value is not None else 0
        return (_HEADER.size + 2 + len(self.key) + 2 + len(self.colname)
                + 4 + value_len + 8 + 1)


@dataclass(frozen=True)
class CommitMarker:
    """Durably remembers the cohort's last committed LSN (non-forced)."""

    lsn: LSN            # position of this marker in the log
    cohort_id: int
    committed_lsn: LSN  # the value being remembered

    def encoded_size(self) -> int:
        return _HEADER.size + 8


@dataclass(frozen=True)
class CheckpointRecord:
    """Memtable state up to ``checkpoint_lsn`` is captured in SSTables."""

    lsn: LSN
    cohort_id: int
    checkpoint_lsn: LSN

    def encoded_size(self) -> int:
        return _HEADER.size + 8


@dataclass(frozen=True)
class CatchupMarker:
    """Durable chunked-catch-up progress (§6.1).

    State at or below ``floor`` was installed from shipped SSTables, so
    it is (a) absent from the log legitimately and (b) already durable
    on disk — a restart mid-install resumes above ``floor``.  Forced at
    append time: it *is* the per-chunk durability point.
    """

    lsn: LSN
    cohort_id: int
    floor: LSN

    def encoded_size(self) -> int:
        return _HEADER.size + 8


LogRecord = Union[WriteRecord, CommitMarker, CheckpointRecord,
                  CatchupMarker]


def encode_record(record: LogRecord) -> bytes:
    """Serialize a record to its wire format."""
    if isinstance(record, WriteRecord):
        value = record.value if record.value is not None else b""
        has_value = record.value is not None
        head = _HEADER.pack(_KIND_WRITE, record.lsn.to_int(),
                            record.timestamp, record.cohort_id)
        return b"".join([
            head,
            struct.pack(">H", len(record.key)), record.key,
            struct.pack(">H", len(record.colname)), record.colname,
            struct.pack(">I", len(value)), value,
            struct.pack(">q", record.version),
            struct.pack(">B", (2 if record.tombstone else 0)
                        | (1 if has_value else 0)),
        ])
    if isinstance(record, CommitMarker):
        head = _HEADER.pack(_KIND_COMMIT, record.lsn.to_int(), 0,
                            record.cohort_id)
        return head + struct.pack(">Q", record.committed_lsn.to_int())
    if isinstance(record, CheckpointRecord):
        head = _HEADER.pack(_KIND_CHECKPOINT, record.lsn.to_int(), 0,
                            record.cohort_id)
        return head + struct.pack(">Q", record.checkpoint_lsn.to_int())
    if isinstance(record, CatchupMarker):
        head = _HEADER.pack(_KIND_CATCHUP, record.lsn.to_int(), 0,
                            record.cohort_id)
        return head + struct.pack(">Q", record.floor.to_int())
    raise TypeError(f"unknown record type {record!r}")


def decode_record(data: bytes) -> LogRecord:
    """Inverse of :func:`encode_record`."""
    kind, lsn_int, timestamp, cohort_id = _HEADER.unpack_from(data, 0)
    offset = _HEADER.size
    lsn = LSN.from_int(lsn_int)
    if kind == _KIND_WRITE:
        (key_len,) = struct.unpack_from(">H", data, offset)
        offset += 2
        key = data[offset:offset + key_len]
        offset += key_len
        (col_len,) = struct.unpack_from(">H", data, offset)
        offset += 2
        colname = data[offset:offset + col_len]
        offset += col_len
        (value_len,) = struct.unpack_from(">I", data, offset)
        offset += 4
        value = data[offset:offset + value_len]
        offset += value_len
        (version,) = struct.unpack_from(">q", data, offset)
        offset += 8
        (flags,) = struct.unpack_from(">B", data, offset)
        return WriteRecord(
            lsn=lsn, cohort_id=cohort_id, key=key, colname=colname,
            value=value if flags & 1 else None, version=version,
            timestamp=timestamp, tombstone=bool(flags & 2))
    if kind == _KIND_COMMIT:
        (committed,) = struct.unpack_from(">Q", data, offset)
        return CommitMarker(lsn=lsn, cohort_id=cohort_id,
                            committed_lsn=LSN.from_int(committed))
    if kind == _KIND_CHECKPOINT:
        (ckpt,) = struct.unpack_from(">Q", data, offset)
        return CheckpointRecord(lsn=lsn, cohort_id=cohort_id,
                                checkpoint_lsn=LSN.from_int(ckpt))
    if kind == _KIND_CATCHUP:
        (floor,) = struct.unpack_from(">Q", data, offset)
        return CatchupMarker(lsn=lsn, cohort_id=cohort_id,
                             floor=LSN.from_int(floor))
    raise ValueError(f"unknown record kind {kind}")
