"""Snapshot manifests: the durable unit of chunked catch-up (§6.1).

A :class:`SnapshotManifest` is a checkpoint-LSN-stamped, *ordered* view
of one engine's SSTables at a moment in time.  It is what a leader pages
through when a follower's gap can no longer be served from the log: the
tables are listed **ascending** by ``(max_lsn, min_lsn, table_id)`` so
that a follower which has durably installed a prefix of the manifest can
derive a safe resume floor — every surviving cell with an LSN at or
below the floor is guaranteed to live in an already-shipped table.

Manifests are identified by ``(engine owner, manifest_id)``.  The engine
bumps ``manifest_id`` whenever its SSTable set changes (flush,
compaction, ingest, purge, wipe), so a paging token issued against one
manifest is never replayed against a structurally different table set —
the chunk protocol detects the generation change and restarts paging
from the follower's durable floor instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .lsn import LSN
from .sstable import SSTable

__all__ = ["SnapshotManifest"]


def _manifest_order(table: SSTable) -> Tuple[LSN, LSN, int]:
    return (table.max_lsn, table.min_lsn, table.table_id)


@dataclass(frozen=True)
class SnapshotManifest:
    """An immutable, ordered snapshot of one cohort replica's SSTables.

    ``checkpoint_lsn`` is the engine's checkpoint at capture time: every
    write at or below it is contained in ``sstables``, so a follower that
    installs the whole manifest needs log records only above it (the
    manifest *horizon*).  WAL retention and marker GC key off this
    horizon — segments below it are safe to drop because any repair can
    be served from the snapshot.
    """

    manifest_id: int
    cohort_id: int
    checkpoint_lsn: LSN
    sstables: Tuple[SSTable, ...] = field(default_factory=tuple)

    @classmethod
    def capture(cls, manifest_id: int, cohort_id: int, checkpoint_lsn: LSN,
                sstables) -> "SnapshotManifest":
        """Build a manifest over ``sstables`` in shipping order."""
        ordered = tuple(sorted(sstables, key=_manifest_order))
        return cls(manifest_id=manifest_id, cohort_id=cohort_id,
                   checkpoint_lsn=checkpoint_lsn, sstables=ordered)

    def tables_after(self, seen: LSN) -> Tuple[SSTable, ...]:
        """Tables not yet shipped to a follower whose paging token is
        ``seen`` (the max ``max_lsn`` it has received so far)."""
        return tuple(t for t in self.sstables if t.max_lsn > seen)

    def bytes_size(self) -> int:
        return sum(t.bytes_size for t in self.sstables)

    def __len__(self) -> int:
        return len(self.sstables)
