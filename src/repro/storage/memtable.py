"""The memtable: committed writes, in memory, awaiting a flush.

A write is applied to the memtable only once it *commits* (§5) — leaders
apply after their log force plus one follower ack, followers apply when a
commit message arrives.  Cells carry the LSN that produced them so that
re-applying records during local recovery is idempotent (§6.1): an older
LSN simply loses to the cell already present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .lsn import LSN
from .records import WriteRecord

__all__ = ["Cell", "Memtable", "lsn_order", "timestamp_order"]


@dataclass(frozen=True)
class Cell:
    """One (row, column) value with its provenance."""

    value: Optional[bytes]
    version: int
    timestamp: float
    lsn: LSN
    tombstone: bool = False


def lsn_order(cell: Cell) -> Tuple:
    """Conflict order for Spinnaker: cohort LSNs totally order writes."""
    return (cell.lsn, cell.timestamp, cell.version)


def timestamp_order(cell: Cell) -> Tuple:
    """Conflict order for the eventually consistent baseline:
    last-write-wins by client timestamp (ties broken by version)."""
    return (cell.timestamp, cell.version)


class Memtable:
    """Row/column map with byte accounting and a sorted snapshot."""

    #: rough per-cell bookkeeping overhead, for flush-threshold purposes
    CELL_OVERHEAD = 64

    def __init__(self, order: Callable[[Cell], Tuple] = lsn_order):
        self._rows: Dict[bytes, Dict[bytes, Cell]] = {}
        self._order = order
        self.bytes_used = 0
        self.min_lsn: Optional[LSN] = None
        self.max_lsn: Optional[LSN] = None

    def __len__(self) -> int:
        return sum(len(cols) for cols in self._rows.values())

    @property
    def is_empty(self) -> bool:
        return not self._rows

    # -- writes --------------------------------------------------------
    def apply(self, record: WriteRecord) -> bool:
        """Apply a committed write.  Returns False if a newer cell won.

        Deletes are stored as tombstones so they replicate and flush like
        any other write; compaction garbage-collects them later.
        """
        cell = Cell(value=record.value, version=record.version,
                    timestamp=record.timestamp, lsn=record.lsn,
                    tombstone=record.tombstone)
        cols = self._rows.setdefault(record.key, {})
        current = cols.get(record.colname)
        if current is not None and self._order(current) >= self._order(cell):
            return False
        if current is not None:
            self.bytes_used -= self._cell_bytes(record.key, record.colname,
                                                current)
        cols[record.colname] = cell
        self.bytes_used += self._cell_bytes(record.key, record.colname, cell)
        if self.min_lsn is None or record.lsn < self.min_lsn:
            self.min_lsn = record.lsn
        if self.max_lsn is None or record.lsn > self.max_lsn:
            self.max_lsn = record.lsn
        return True

    @classmethod
    def _cell_bytes(cls, key: bytes, col: bytes, cell: Cell) -> int:
        value_len = len(cell.value) if cell.value is not None else 0
        return len(key) + len(col) + value_len + cls.CELL_OVERHEAD

    # -- reads -----------------------------------------------------------
    def get(self, key: bytes, colname: bytes) -> Optional[Cell]:
        cols = self._rows.get(key)
        if cols is None:
            return None
        return cols.get(colname)

    def get_row(self, key: bytes) -> Dict[bytes, Cell]:
        return dict(self._rows.get(key, {}))

    # -- flushing ----------------------------------------------------------
    def sorted_items(self) -> Iterator[Tuple[bytes, bytes, Cell]]:
        """(key, column, cell) in (key, column) order — SSTable input."""
        for key in sorted(self._rows):
            cols = self._rows[key]
            for col in sorted(cols):
                yield key, col, cols[col]

    def keys(self) -> List[bytes]:
        return sorted(self._rows)
