"""The shared write-ahead log.

Each Spinnaker node has **one** physical log shared by every cohort the
node belongs to, so a dedicated logging device can be used (§4.1).  Each
cohort uses its own *logical* LSN stream within the shared log.  This has
two consequences the paper spends §6.1.1 on:

* a follower's log cannot be physically truncated after a leader change,
  because log records of *other* cohorts are interleaved after the
  truncation point — instead, discarded LSNs go into a per-cohort
  **skipped-LSN list** that local recovery consults (*logical truncation*);
* the oldest log segments are rolled over once their writes are captured
  in SSTables, so catch-up may need to fall back to shipping SSTables.

Durability model
----------------
``append(record, force=True)`` returns an event that fires when the record
is on stable storage (the log device batches concurrent forces — group
commit).  A non-forced append (used for commit markers) becomes durable
when any *later* force completes.  On :meth:`crash`, every record that was
not yet durable is lost, exactly like a real machine losing its page
cache.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..sim.disk import LogDevice
from ..sim.events import Event
from .lsn import LSN
from .records import (CatchupMarker, CheckpointRecord, CommitMarker,
                      LogRecord, WriteRecord)

__all__ = ["SharedLog", "DuplicateLSN", "StaleLSN"]


class DuplicateLSN(Exception):
    """A write record with an already-present LSN was appended."""


class StaleLSN(Exception):
    """A write record with a non-increasing LSN was appended."""


class _Entry:
    __slots__ = ("record", "seq")

    def __init__(self, record: LogRecord, seq: int):
        self.record = record
        self.seq = seq


class _CohortView:
    """Per-cohort logical view over the shared physical log."""

    __slots__ = ("writes", "by_lsn", "skipped", "last_cmt", "ckpt",
                 "min_retained", "catchup_floor", "_skipped_view")

    def __init__(self) -> None:
        self.writes: List[_Entry] = []        # WriteRecords, append order
        self.by_lsn: Dict[LSN, _Entry] = {}
        self.skipped = set()                  # the skipped-LSN list (§6.1.1)
        self.last_cmt = LSN.zero()            # from durable commit markers
        self.ckpt = LSN.zero()
        self.min_retained = LSN.zero()        # GC horizon (exclusive)
        self.catchup_floor = LSN.zero()       # from durable catch-up markers
        self._skipped_view: Optional[FrozenSet[LSN]] = None


class SharedLog:
    """One node's shared write-ahead log (volatile tail + durable prefix)."""

    def __init__(self, device: Optional[LogDevice] = None):
        self.device = device
        self._seq = 0
        self._durable_seq = 0
        self._views: Dict[int, _CohortView] = {}
        self._markers: List[_Entry] = []   # commit/checkpoint/catch-up
        self.bytes_appended = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: LogRecord, force: bool = True,
               backfill: bool = False) -> Optional[Event]:
        """Append a record; returns the durability event when ``force``.

        Write records must carry a strictly increasing LSN within their
        cohort (among non-skipped records); duplicates raise
        :class:`DuplicateLSN` so protocol bugs surface loudly — recovery
        code checks :meth:`contains` before re-appending.

        ``backfill`` permits an LSN at or below the cohort's last one:
        catch-up and takeover re-proposals legitimately fill gaps left by
        lost proposes (§6.1).  Physically it is still an append; the
        logical view keeps its records sorted by LSN, and a backfilled
        LSN is removed from the skipped list (the leader is
        authoritative about which records are committed).
        """
        view = self._view(record.cohort_id)
        if isinstance(record, WriteRecord):
            if record.lsn in view.by_lsn:
                raise DuplicateLSN(f"{record.lsn} already in cohort "
                                   f"{record.cohort_id} log")
            last = self._last_lsn(view)
            if record.lsn <= last and not backfill:
                raise StaleLSN(f"{record.lsn} <= last LSN {last}")
        self._seq += 1
        entry = _Entry(record, self._seq)
        if isinstance(record, WriteRecord):
            idx = len(view.writes)
            while idx > 0 and view.writes[idx - 1].record.lsn > record.lsn:
                idx -= 1
            view.writes.insert(idx, entry)
            view.by_lsn[record.lsn] = entry
            if backfill and record.lsn in view.skipped:
                view.skipped.discard(record.lsn)
                view._skipped_view = None
        else:
            self._markers.append(entry)
            if isinstance(record, CommitMarker):
                if record.committed_lsn > view.last_cmt:
                    view.last_cmt = record.committed_lsn
            elif isinstance(record, CheckpointRecord):
                if record.checkpoint_lsn > view.ckpt:
                    view.ckpt = record.checkpoint_lsn
            elif isinstance(record, CatchupMarker):
                if record.floor > view.catchup_floor:
                    view.catchup_floor = record.floor
        size = record.encoded_size()
        self.bytes_appended += size
        if self.device is None:
            # No simulated device (pure unit tests): durable immediately.
            self._durable_seq = self._seq
            if not force:
                return None
            return Event(_NullSim()).succeed()
        if force:
            ev = self.device.force(size)
            seq_at_append = self._seq
            ev.add_callback(lambda _ev: self._mark_durable(seq_at_append))
            return ev
        self.device.append_noforce(size)
        return None

    def append_batch(self, records: List[LogRecord]) -> Optional[Event]:
        """Append several records with a single force (§8.2 extension).

        The batch is durable all-or-nothing: one device operation covers
        every record, so a crash can never persist a prefix of a
        multi-operation transaction's log records.
        """
        if not records:
            return None
        total = 0
        for record in records:
            if not isinstance(record, WriteRecord):
                raise TypeError("append_batch takes WriteRecords only")
            view = self._view(record.cohort_id)
            if record.lsn in view.by_lsn:
                raise DuplicateLSN(f"{record.lsn} already in cohort "
                                   f"{record.cohort_id} log")
            last = self._last_lsn(view)
            if record.lsn <= last:
                raise StaleLSN(f"{record.lsn} <= last LSN {last}")
            self._seq += 1
            entry = _Entry(record, self._seq)
            view.writes.append(entry)
            view.by_lsn[record.lsn] = entry
            size = record.encoded_size()
            total += size
            self.bytes_appended += size
        if self.device is None:
            self._durable_seq = self._seq
            return Event(_NullSim()).succeed()
        ev = self.device.force(total)
        seq_at_append = self._seq
        ev.add_callback(lambda _ev: self._mark_durable(seq_at_append))
        return ev

    def _mark_durable(self, seq: int) -> None:
        if seq > self._durable_seq:
            self._durable_seq = seq

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _view(self, cohort_id: int) -> _CohortView:
        view = self._views.get(cohort_id)
        if view is None:
            view = self._views[cohort_id] = _CohortView()
        return view

    @staticmethod
    def _last_lsn(view: _CohortView) -> LSN:
        for entry in reversed(view.writes):
            if entry.record.lsn not in view.skipped:
                return entry.record.lsn
        return view.min_retained

    def last_lsn(self, cohort_id: int) -> LSN:
        """``n.lst``: the cohort's last (non-skipped) write LSN."""
        return self._last_lsn(self._view(cohort_id))

    def last_committed_lsn(self, cohort_id: int) -> LSN:
        """``n.cmt``: from the most recent durable commit marker."""
        return self._view(cohort_id).last_cmt

    def checkpoint_lsn(self, cohort_id: int) -> LSN:
        return self._view(cohort_id).ckpt

    def catchup_floor(self, cohort_id: int) -> LSN:
        """Durable chunked-catch-up progress: state at or below this LSN
        was installed from shipped SSTables (see :class:`CatchupMarker`)."""
        return self._view(cohort_id).catchup_floor

    def marker_count(self) -> int:
        """How many commit/checkpoint/catch-up markers the log retains —
        bounded by marker GC, not by history length."""
        return len(self._markers)

    def contains(self, cohort_id: int, lsn: LSN) -> bool:
        return lsn in self._view(cohort_id).by_lsn

    def record_at(self, cohort_id: int, lsn: LSN) -> Optional[WriteRecord]:
        entry = self._view(cohort_id).by_lsn.get(lsn)
        return entry.record if entry is not None else None

    def write_records(self, cohort_id: int, after: LSN = LSN.zero(),
                      upto: Optional[LSN] = None,
                      include_skipped: bool = False) -> List[WriteRecord]:
        """Write records with ``after < lsn <= upto``, in LSN order."""
        view = self._view(cohort_id)
        out = [
            entry.record for entry in view.writes
            if entry.record.lsn > after
            and (upto is None or entry.record.lsn <= upto)
            and (include_skipped or entry.record.lsn not in view.skipped)
        ]
        out.sort(key=lambda rec: rec.lsn)
        return out

    def min_retained_lsn(self, cohort_id: int) -> LSN:
        """The cohort's GC horizon: records at or below this LSN have
        been rolled over into SSTables and are no longer in the log."""
        return self._view(cohort_id).min_retained

    def can_serve_after(self, cohort_id: int, lsn: LSN) -> bool:
        """True if every record after ``lsn`` is still in the log (not
        rolled over to SSTables) — the §6.1 catch-up source check."""
        return lsn >= self._view(cohort_id).min_retained

    # ------------------------------------------------------------------
    # Logical truncation (§6.1.1) and GC
    # ------------------------------------------------------------------
    def add_skipped(self, cohort_id: int, lsns: Iterable[LSN]) -> None:
        """Record discarded LSNs in the cohort's skipped-LSN list."""
        view = self._view(cohort_id)
        view.skipped.update(lsns)
        view._skipped_view = None

    def skipped_lsns(self, cohort_id: int) -> FrozenSet[LSN]:
        """Read-only view of the skipped-LSN list; cached between
        mutations so hot-path callers don't copy the set every call."""
        view = self._view(cohort_id)
        if view._skipped_view is None:
            view._skipped_view = frozenset(view.skipped)
        return view._skipped_view

    def is_skipped(self, cohort_id: int, lsn: LSN) -> bool:
        return lsn in self._view(cohort_id).skipped

    def gc_through(self, cohort_id: int, upto: LSN) -> int:
        """Roll over log records with ``lsn <= upto`` (captured in
        SSTables).  Skipped-LSN entries below the horizon are collected
        with the log files they cover.  Returns records dropped."""
        view = self._view(cohort_id)
        keep: List[_Entry] = []
        dropped = 0
        for entry in view.writes:
            if entry.record.lsn <= upto:
                view.by_lsn.pop(entry.record.lsn, None)
                dropped += 1
            else:
                keep.append(entry)
        view.writes = keep
        view.skipped = {lsn for lsn in view.skipped if lsn > upto}
        view._skipped_view = None
        if upto > view.min_retained:
            view.min_retained = upto
        self._gc_markers()
        return dropped

    @staticmethod
    def _marker_key(record: LogRecord) -> Tuple[int, int]:
        if isinstance(record, CommitMarker):
            return (record.cohort_id, 1)
        if isinstance(record, CheckpointRecord):
            return (record.cohort_id, 2)
        return (record.cohort_id, 3)  # CatchupMarker

    @staticmethod
    def _marker_value(record: LogRecord) -> LSN:
        if isinstance(record, CommitMarker):
            return record.committed_lsn
        if isinstance(record, CheckpointRecord):
            return record.checkpoint_lsn
        return record.floor  # CatchupMarker

    def _gc_markers(self) -> None:
        """Drop durable markers superseded by a newer durable marker of
        the same kind for the same cohort.

        Only **durable** markers may act as superseders: a volatile
        marker may still be lost in a crash, and dropping the durable one
        it shadows would lose both states.  :meth:`crash` recomputes
        marker-derived state by a max over the survivors, so keeping the
        maximal durable marker per (cohort, kind) preserves it exactly.
        """
        best: Dict[Tuple[int, int], _Entry] = {}
        for entry in self._markers:
            if entry.seq > self._durable_seq:
                continue
            key = self._marker_key(entry.record)
            cur = best.get(key)
            if (cur is None or self._marker_value(entry.record)
                    >= self._marker_value(cur.record)):
                best[key] = entry
        self._markers = [
            entry for entry in self._markers
            if entry.seq > self._durable_seq
            or best.get(self._marker_key(entry.record)) is entry
        ]

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose every record that was not durable (volatile tail)."""
        for view in self._views.values():
            survivors = [e for e in view.writes if e.seq <= self._durable_seq]
            view.writes = survivors
            view.by_lsn = {e.record.lsn: e for e in survivors}
        self._markers = [e for e in self._markers
                         if e.seq <= self._durable_seq]
        # Recompute marker-derived state from the durable prefix.
        for view in self._views.values():
            view.last_cmt = LSN.zero()
            view.ckpt = LSN.zero()
            view.catchup_floor = LSN.zero()
            view._skipped_view = None
        for entry in self._markers:
            view = self._view(entry.record.cohort_id)
            rec = entry.record
            if isinstance(rec, CommitMarker):
                if rec.committed_lsn > view.last_cmt:
                    view.last_cmt = rec.committed_lsn
            elif isinstance(rec, CheckpointRecord):
                if rec.checkpoint_lsn > view.ckpt:
                    view.ckpt = rec.checkpoint_lsn
            elif isinstance(rec, CatchupMarker):
                if rec.floor > view.catchup_floor:
                    view.catchup_floor = rec.floor

    def wipe(self) -> None:
        """Total media loss (double-disk failure, §6.1 'lost all data')."""
        self._views.clear()
        self._markers.clear()
        self._seq = 0
        self._durable_seq = 0

    def cohorts(self) -> List[int]:
        return list(self._views)


class _NullSim:
    """Minimal Simulator stand-in for device-less logs in unit tests."""

    now = 0.0
