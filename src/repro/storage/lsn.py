"""Log sequence numbers.

Spinnaker LSNs are two-part ``epoch.sequence`` values (Appendix B): the
epoch number occupies the high-order bits and is bumped — via the
coordination service — every time a new cohort leader takes over, which
guarantees that a new leader assigns LSNs greater than any LSN previously
used in the cohort.  LSNs effectively play the role of Paxos proposal
numbers.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["LSN", "EPOCH_BITS", "SEQ_BITS"]

#: Bit layout used by :meth:`LSN.to_int` — 16 bits of epoch over 48 bits
#: of sequence, mirroring the paper's "high order bits" scheme.
EPOCH_BITS = 16
SEQ_BITS = 48
_SEQ_MASK = (1 << SEQ_BITS) - 1
_MAX_EPOCH = (1 << EPOCH_BITS) - 1


class LSN(NamedTuple):
    """An ``epoch.seq`` log sequence number with total ordering."""

    epoch: int
    seq: int

    # -- construction ------------------------------------------------------
    @classmethod
    def zero(cls) -> "LSN":
        """The LSN smaller than every real record's LSN."""
        return cls(0, 0)

    @classmethod
    def from_int(cls, packed: int) -> "LSN":
        return cls(packed >> SEQ_BITS, packed & _SEQ_MASK)

    # -- arithmetic ----------------------------------------------------------
    def next(self) -> "LSN":
        """The next LSN in the same epoch."""
        if self.seq >= _SEQ_MASK:
            raise OverflowError(f"sequence overflow in epoch {self.epoch}")
        return LSN(self.epoch, self.seq + 1)

    def next_epoch(self) -> "LSN":
        """The first assignable position after a leader takeover.

        Note the sequence continues from the current value rather than
        resetting, matching the Appendix B example where epoch 2 begins at
        2.22 after epoch 1 ended at 1.21.
        """
        if self.epoch >= _MAX_EPOCH:
            raise OverflowError("epoch overflow")
        return LSN(self.epoch + 1, self.seq)

    def with_epoch(self, epoch: int) -> "LSN":
        if epoch < self.epoch:
            raise ValueError(
                f"epoch must not decrease ({epoch} < {self.epoch})")
        return LSN(epoch, self.seq)

    def to_int(self) -> int:
        """Pack into a single integer, epoch in the high bits."""
        if self.seq > _SEQ_MASK:
            raise OverflowError("sequence does not fit")
        return (self.epoch << SEQ_BITS) | self.seq

    def __str__(self) -> str:
        return f"{self.epoch}.{self.seq}"
