"""SSTable compaction.

In the background, smaller SSTables are merged into larger ones to garbage
collect deleted rows and improve read performance (§4.1).  The merge keeps,
for every (key, column), the cell that wins under the engine's conflict
order; tombstones are dropped only on *full* compactions (when every table
is merged, so no older version can resurface).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .memtable import Cell, lsn_order
from .sstable import SSTable

__all__ = ["compact", "SizeTieredPolicy"]


def compact(tables: List[SSTable],
            order: Callable[[Cell], Tuple] = lsn_order,
            drop_tombstones: bool = False) -> SSTable:
    """Merge ``tables`` into a single SSTable."""
    winners: Dict[Tuple[bytes, bytes], Cell] = {}
    for table in tables:
        for key, col, cell in table.entries():
            current = winners.get((key, col))
            if current is None or order(cell) > order(current):
                winners[(key, col)] = cell
    entries = [
        (key, col, cell)
        for (key, col), cell in sorted(winners.items())
        if not (drop_tombstones and cell.tombstone)
    ]
    min_lsn = min((t.min_lsn for t in tables), default=None)
    max_lsn = max((t.max_lsn for t in tables), default=None)
    return SSTable(entries, min_lsn=min_lsn, max_lsn=max_lsn)


class SizeTieredPolicy:
    """Pick merge candidates: any ``fanin`` tables of similar size.

    A deliberately simple stand-in for Cassandra's size-tiered strategy:
    when at least ``fanin`` tables exist whose sizes are within
    ``bucket_ratio`` of each other, merge that bucket.
    """

    def __init__(self, fanin: int = 4, bucket_ratio: float = 2.0):
        if fanin < 2:
            raise ValueError("fanin must be >= 2")
        self.fanin = fanin
        self.bucket_ratio = bucket_ratio

    def pick(self, tables: List[SSTable]) -> List[SSTable]:
        """Tables to merge now, or an empty list."""
        if len(tables) < self.fanin:
            return []
        by_size = sorted(tables, key=lambda t: t.bytes_size)
        bucket: List[SSTable] = []
        for table in by_size:
            if not bucket:
                bucket = [table]
                continue
            if table.bytes_size <= bucket[0].bytes_size * self.bucket_ratio:
                bucket.append(table)
                if len(bucket) >= self.fanin:
                    return bucket
            else:
                bucket = [table]
        return []
