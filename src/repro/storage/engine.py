"""The per-replica storage engine: memtable + SSTables + checkpoints.

Every node runs one engine per key range it replicates (three, with the
default placement).  The engine holds only **committed** state — the
replication layer applies writes to it at commit time — so timeline reads
at followers simply read their local engine.

Responsibilities:

* apply committed writes (idempotently, for local recovery re-apply);
* serve (key, column) reads across memtable + SSTables;
* flush the memtable to an SSTable when it exceeds the flush threshold,
  advancing the **checkpoint LSN** that bounds local recovery (§6.1);
* run compactions under a size-tiered policy;
* report the SSTables needed for log-rolled-over catch-up (§6.1), and
  ingest SSTables shipped by a leader.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .compaction import SizeTieredPolicy, compact
from .lsn import LSN
from .memtable import Cell, Memtable, lsn_order
from .records import WriteRecord
from .snapshot import SnapshotManifest
from .sstable import SSTable

__all__ = ["StorageEngine"]


class StorageEngine:
    """Storage for one replica of one key range."""

    def __init__(self, cohort_id: int,
                 flush_threshold_bytes: int = 32 * 1024 * 1024,
                 order: Callable[[Cell], Tuple] = lsn_order,
                 compaction: Optional[SizeTieredPolicy] = None):
        self.cohort_id = cohort_id
        self.flush_threshold_bytes = flush_threshold_bytes
        self.order = order
        self.compaction = compaction or SizeTieredPolicy()
        self.memtable = Memtable(order)
        self.sstables: List[SSTable] = []   # newest first
        self.applied_lsn = LSN.zero()       # highest LSN ever applied
        self.checkpoint_lsn = LSN.zero()    # all LSNs <= this are in SSTables
        self.flushes = 0
        self.compactions = 0
        # Bumped whenever the SSTable set changes so paging tokens issued
        # against one snapshot manifest are never replayed against a
        # structurally different table set.
        self.manifest_id = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def apply(self, record: WriteRecord) -> None:
        """Apply a committed write.  Safe to re-apply (idempotent)."""
        if record.cohort_id != self.cohort_id:
            raise ValueError(
                f"record for cohort {record.cohort_id} applied to engine "
                f"of cohort {self.cohort_id}")
        self.memtable.apply(record)
        if record.lsn > self.applied_lsn:
            self.applied_lsn = record.lsn

    def needs_flush(self) -> bool:
        return self.memtable.bytes_used >= self.flush_threshold_bytes

    def flush(self) -> Optional[LSN]:
        """Flush the memtable to a new SSTable.

        Returns the new checkpoint LSN (every write with LSN at or below
        it is now captured on 'disk'), or None if there was nothing to
        flush.  The caller persists a checkpoint record and may roll over
        log segments up to the returned LSN.
        """
        if self.memtable.is_empty:
            return None
        table = SSTable.from_memtable(self.memtable)
        self.sstables.insert(0, table)
        new_checkpoint = self.memtable.max_lsn or self.checkpoint_lsn
        self.memtable = Memtable(self.order)
        if new_checkpoint > self.checkpoint_lsn:
            self.checkpoint_lsn = new_checkpoint
        self.flushes += 1
        self.manifest_id += 1
        self.maybe_compact()
        return self.checkpoint_lsn

    def maybe_compact(self) -> bool:
        """Run one compaction round if the policy finds a bucket."""
        victims = self.compaction.pick(self.sstables)
        if not victims:
            return False
        # Tombstones are kept even on full compactions: catch-up may ship
        # these tables to a follower whose state predates the delete
        # (§6.1), and dropping the tombstone would resurrect the row
        # there.  ``purge_tombstones`` exists for explicit, offline GC.
        merged = compact(victims, order=self.order, drop_tombstones=False)
        survivors = [t for t in self.sstables if t not in victims]
        # Keep newest-first order: the merged table takes the position of
        # its newest victim.
        self.sstables = [merged] + survivors
        self.sstables.sort(key=lambda t: t.max_lsn, reverse=True)
        self.compactions += 1
        self.manifest_id += 1
        return True

    def purge_tombstones(self) -> None:
        """Full compaction that drops tombstones.  Only safe when no
        replica can still need the deletes (e.g. offline maintenance on
        a fully caught-up cohort)."""
        if not self.sstables:
            return
        merged = compact(self.sstables, order=self.order,
                         drop_tombstones=True)
        self.sstables = [merged]
        self.compactions += 1
        self.manifest_id += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: bytes, colname: bytes) -> Optional[Cell]:
        """The winning cell across memtable and SSTables (or None).

        Tombstones are returned (not hidden) — the API layer converts
        them to not-found, while replication/repair logic needs to see
        them.
        """
        best = self.memtable.get(key, colname)
        for table in self.sstables:
            cell = table.get(key, colname)
            if cell is not None and (
                    best is None or self.order(cell) > self.order(best)):
                best = cell
        return best

    def get_row(self, key: bytes) -> Dict[bytes, Cell]:
        row: Dict[bytes, Cell] = {}
        for table in reversed(self.sstables):  # oldest first
            for col, cell in table.row(key).items():
                current = row.get(col)
                if current is None or self.order(cell) > self.order(current):
                    row[col] = cell
        for col, cell in self.memtable.get_row(key).items():
            current = row.get(col)
            if current is None or self.order(cell) > self.order(current):
                row[col] = cell
        return row

    def scan(self, start_key: bytes, end_key: Optional[bytes],
             limit: int = 100) -> List[Tuple[bytes, Dict[bytes, Cell]]]:
        """Rows with ``start_key <= key < end_key`` in key order.

        Returns up to ``limit`` (key, columns) pairs; tombstoned columns
        are omitted and fully deleted rows are skipped.  ``end_key`` of
        None means "to the end of this replica's range".
        """
        candidates = set()
        for source_keys in ([self.memtable.keys()]
                            + [t.keys() for t in self.sstables]):
            for key in source_keys:
                if key >= start_key and (end_key is None or key < end_key):
                    candidates.add(key)
        out: List[Tuple[bytes, Dict[bytes, Cell]]] = []
        for key in sorted(candidates):
            row = {col: cell for col, cell in self.get_row(key).items()
                   if not cell.tombstone}
            if not row:
                continue
            out.append((key, row))
            if len(out) >= limit:
                break
        return out

    def version_of(self, key: bytes, colname: bytes) -> int:
        """Current version number for conditionalPut checks (0 = absent)."""
        cell = self.get(key, colname)
        if cell is None or cell.tombstone:
            return 0
        return cell.version

    # ------------------------------------------------------------------
    # Catch-up support (§6.1)
    # ------------------------------------------------------------------
    def sstables_with_writes_after(self, lsn: LSN) -> List[SSTable]:
        """Tables a leader ships when its log rolled past ``lsn``."""
        return [t for t in self.sstables if t.overlaps_lsn_range(lsn)]

    def manifest(self) -> SnapshotManifest:
        """The current snapshot manifest: this engine's SSTable set in
        shipping order, stamped with the checkpoint LSN (§6.1)."""
        return SnapshotManifest.capture(
            manifest_id=self.manifest_id, cohort_id=self.cohort_id,
            checkpoint_lsn=self.checkpoint_lsn, sstables=self.sstables)

    def ingest_sstable(self, table: SSTable,
                       checkpoint_upto: Optional[LSN] = None) -> None:
        """Adopt a table shipped from the leader during catch-up.

        ``checkpoint_upto`` caps how far the checkpoint may advance: a
        chunked install must not claim durability for LSNs whose cells
        could still live in an unshipped (compacted, overlapping) table.
        None means the table is complete up to its max LSN (the one-shot
        and split-ingest paths).  Re-ingesting a table object already
        present is a no-op, so chunk retries are idempotent.
        """
        if any(t is table for t in self.sstables):
            return
        self.sstables.insert(0, table)
        self.sstables.sort(key=lambda t: t.max_lsn, reverse=True)
        advance = table.max_lsn
        if checkpoint_upto is not None and checkpoint_upto < advance:
            advance = checkpoint_upto
        if advance > self.applied_lsn:
            self.applied_lsn = advance
        if advance > self.checkpoint_lsn:
            # Shipped tables are durable by construction; local recovery
            # need not replay below ``advance`` for these cells.
            self.checkpoint_lsn = advance
        self.manifest_id += 1

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose the memtable (it was RAM); SSTables survive on disk."""
        self.memtable = Memtable(self.order)
        self.applied_lsn = self.checkpoint_lsn

    def wipe(self) -> None:
        """Total disk loss: nothing survives."""
        self.memtable = Memtable(self.order)
        self.sstables = []
        self.applied_lsn = LSN.zero()
        self.checkpoint_lsn = LSN.zero()
        self.manifest_id += 1
