"""A plain bloom filter for SSTable key lookups.

SSTables are consulted newest-first on reads; the filter lets the engine
skip tables that cannot contain the (key, column) being read, which is how
Bigtable-style stores keep read amplification down.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

__all__ = ["BloomFilter"]


class BloomFilter:
    """Standard k-hash bloom filter over a bit array."""

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01):
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2)
        self.num_bits = max(
            8, int(-expected_items * math.log(false_positive_rate) / ln2**2))
        self.num_hashes = max(1, round(self.num_bits / expected_items * ln2))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.items_added = 0

    def _positions(self, item: bytes) -> Iterable[int]:
        digest = hashlib.sha256(item).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: bytes) -> None:
        for pos in self._positions(item):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.items_added += 1

    def might_contain(self, item: bytes) -> bool:
        return all(self._bits[pos >> 3] & (1 << (pos & 7))
                   for pos in self._positions(item))

    def fill_ratio(self) -> float:
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits
