"""Immutable sorted string tables.

An SSTable is a flushed memtable: (key, column) → cell entries in sorted
order with a lookup index and a bloom filter.  Each table is tagged with
the **min and max LSN** of the writes it contains (§6.1): when a
follower's catch-up request can no longer be served from the leader's log
(rolled over), the leader locates SSTables by these tags and ships them
instead.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .bloom import BloomFilter
from .lsn import LSN
from .memtable import Cell, Memtable

__all__ = ["SSTable"]

_table_ids = itertools.count(1)


class SSTable:
    """An immutable, sorted, indexed run of cells."""

    def __init__(self, entries: Iterable[Tuple[bytes, bytes, Cell]],
                 min_lsn: Optional[LSN] = None,
                 max_lsn: Optional[LSN] = None):
        self.table_id = next(_table_ids)
        self._entries: List[Tuple[bytes, bytes, Cell]] = list(entries)
        self._index: Dict[Tuple[bytes, bytes], Cell] = {}
        self._keys: List[bytes] = []
        last_key = None
        for key, col, cell in self._entries:
            self._index[(key, col)] = cell
            if key != last_key:
                self._keys.append(key)
                last_key = key
        self.bloom = BloomFilter(max(1, len(self._entries)))
        for key, col, _cell in self._entries:
            self.bloom.add(key + b"\x00" + col)
        lsns = [cell.lsn for _, _, cell in self._entries]
        self.min_lsn = min_lsn if min_lsn is not None else (
            min(lsns) if lsns else LSN.zero())
        self.max_lsn = max_lsn if max_lsn is not None else (
            max(lsns) if lsns else LSN.zero())
        self.bytes_size = sum(
            len(k) + len(c) + (len(cell.value) if cell.value else 0) + 32
            for k, c, cell in self._entries)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_memtable(cls, memtable: Memtable) -> "SSTable":
        return cls(memtable.sorted_items(),
                   min_lsn=memtable.min_lsn, max_lsn=memtable.max_lsn)

    # -- reads ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes, colname: bytes) -> Optional[Cell]:
        probe = key + b"\x00" + colname
        if not self.bloom.might_contain(probe):
            return None
        return self._index.get((key, colname))

    def row(self, key: bytes) -> Dict[bytes, Cell]:
        return {col: cell for (k, col), cell in self._index.items()
                if k == key}

    def entries(self) -> Iterator[Tuple[bytes, bytes, Cell]]:
        return iter(self._entries)

    def keys(self) -> List[bytes]:
        return list(self._keys)

    def overlaps_lsn_range(self, after: LSN) -> bool:
        """True if the table may contain writes with LSN > ``after``."""
        return self.max_lsn > after

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SSTable(id={self.table_id}, n={len(self._entries)}, "
                f"lsn=[{self.min_lsn}..{self.max_lsn}])")
