"""Per-node storage substrate: WAL, memtables, SSTables (Bigtable-style).

Spinnaker reused Cassandra's storage layer (Appendix C); this package is
our from-scratch equivalent, shared by both the Spinnaker implementation
(:mod:`repro.core`) and the eventually consistent baseline
(:mod:`repro.baseline`).
"""

from .lsn import LSN
from .records import (CatchupMarker, CheckpointRecord, CommitMarker,
                      LogRecord, WriteRecord, decode_record, encode_record)
from .wal import DuplicateLSN, SharedLog, StaleLSN
from .memtable import Cell, Memtable, lsn_order, timestamp_order
from .bloom import BloomFilter
from .sstable import SSTable
from .compaction import SizeTieredPolicy, compact
from .snapshot import SnapshotManifest
from .engine import StorageEngine

__all__ = [
    "LSN",
    "WriteRecord", "CommitMarker", "CheckpointRecord", "CatchupMarker",
    "LogRecord", "encode_record", "decode_record",
    "SharedLog", "DuplicateLSN", "StaleLSN",
    "Cell", "Memtable", "lsn_order", "timestamp_order",
    "BloomFilter", "SSTable",
    "compact", "SizeTieredPolicy",
    "SnapshotManifest",
    "StorageEngine",
]
