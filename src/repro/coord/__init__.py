"""A ZooKeeper-equivalent coordination service (§4.2, §7.1).

Implements exactly the subset Spinnaker relies on: a znode tree with
persistent/ephemeral/sequential nodes, one-shot watches, and
heartbeat-based sessions whose expiry deletes ephemerals (failure
detection).  The service itself is assumed fault tolerant, as the paper
assumes of ZooKeeper; see DESIGN.md.
"""

from .znode import (BadVersionError, CoordError, EphemeralError,
                    NoNodeError, NodeExistsError, NotEmptyError, WatchEvent,
                    ZNodeTree)
from .service import SESSION_TIMEOUT_DEFAULT, CoordinationService
from .client import CoordClient, SessionExpired
from .recipes import Barrier, DistributedLock, GroupMembership

__all__ = [
    "ZNodeTree", "WatchEvent",
    "CoordError", "NoNodeError", "NodeExistsError", "NotEmptyError",
    "BadVersionError", "EphemeralError", "SessionExpired",
    "CoordinationService", "SESSION_TIMEOUT_DEFAULT",
    "CoordClient",
    "GroupMembership", "DistributedLock", "Barrier",
]
