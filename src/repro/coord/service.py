"""The coordination service process.

Spinnaker treats ZooKeeper as a fault-tolerant, always-available
coordination service (§4.2): it is itself replicated with Paxos, it is
*not* on the critical path of reads and writes, and the only steady-state
traffic is heartbeats.  We model it accordingly — one logical service
endpoint whose internal replication is assumed (its availability is an
explicit substitution documented in DESIGN.md), with:

* a serialized request queue and per-op service times (updates pay a log
  force, like a real ZK quorum write);
* sessions with heartbeat-based liveness and session-expiry sweeps —
  ephemeral znode cleanup on expiry is what gives Spinnaker its failure
  detection;
* one-shot watches delivered as async notifications.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..sim.events import Simulator
from ..sim.network import Network, Request
from ..sim.process import spawn, timeout
from ..sim.resources import Resource, serve
from .znode import CoordError, ERRORS_BY_CODE, ZNodeTree

__all__ = ["CoordinationService", "SESSION_TIMEOUT_DEFAULT"]

#: The paper used a 2-second ZooKeeper failure-detection timeout (§D.1).
SESSION_TIMEOUT_DEFAULT = 2.0


class CoordinationService:
    """The server side.  Install on a network as endpoint ``name``."""

    def __init__(self, sim: Simulator, network: Network,
                 name: str = "coord",
                 read_latency: float = 0.3e-3,
                 update_latency: float = 1.2e-3,
                 sweep_interval: float = 0.25):
        self.sim = sim
        self.name = name
        self.tree = ZNodeTree()
        self.read_latency = read_latency
        self.update_latency = update_latency
        self.sweep_interval = sweep_interval
        self.endpoint = network.endpoint(name)
        self.endpoint.on_request(self._on_request)
        self._cpu = Resource(sim, capacity=1)
        self._sessions: Dict[int, Dict[str, Any]] = {}
        self._next_session = 1
        self.expired_sessions = 0
        spawn(sim, self._expiry_sweeper(), name="coord-sweeper")

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def _register_session(self, client: str, session_timeout: float) -> int:
        session = self._next_session
        self._next_session += 1
        self._sessions[session] = {
            "client": client,
            "timeout": session_timeout,
            "last_seen": self.sim.now,
            "alive": True,
        }
        return session

    def _touch(self, session: Optional[int]) -> bool:
        info = self._sessions.get(session)
        if info is None or not info["alive"]:
            return False
        info["last_seen"] = self.sim.now
        return True

    def _expiry_sweeper(self):
        while True:
            yield timeout(self.sim, self.sweep_interval)
            now = self.sim.now
            for session, info in list(self._sessions.items()):
                if info["alive"] and now - info["last_seen"] > info["timeout"]:
                    self._expire(session)

    def _expire(self, session: int) -> None:
        info = self._sessions.get(session)
        if info is None or not info["alive"]:
            return
        info["alive"] = False
        self.expired_sessions += 1
        fired = self.tree.expire_session(session)
        self._deliver_watches(fired)

    def expire_session_now(self, session: int) -> None:
        """Test/ops hook: expire without waiting for the sweep."""
        self._expire(session)

    def session_is_alive(self, session: int) -> bool:
        info = self._sessions.get(session)
        return bool(info and info["alive"])

    # ------------------------------------------------------------------
    # Watch delivery
    # ------------------------------------------------------------------
    def _deliver_watches(self, fired) -> None:
        for owner, event in fired:
            client, watch_id = owner
            self.endpoint.send(client, {
                "op": "watch-event",
                "watch_id": watch_id,
                "kind": event.kind,
                "path": event.path,
            }, size=96)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _on_request(self, req: Request) -> None:
        payload = req.payload
        op = payload.get("op")
        if op == "heartbeat":
            # Heartbeats bypass the request queue; the ack tells the
            # client its session (lease) is still alive.
            alive = self._touch(payload.get("session"))
            req.respond({"ok": bool(alive)}, size=48)
            return
        spawn(self.sim, self._handle(req), name=f"coord-{op}")

    def _handle(self, req: Request):
        payload = req.payload
        op = payload["op"]
        is_update = op in ("create", "delete", "set", "close-session")
        latency = self.update_latency if is_update else self.read_latency
        yield from serve(self._cpu, latency)
        session = payload.get("session")
        if op != "start-session" and session is not None \
                and not self._touch(session):
            req.respond({"ok": False, "code": "session-expired",
                         "msg": f"session {session}"})
            return
        try:
            result, fired = self._apply(req.src, payload)
        except CoordError as err:
            req.respond({"ok": False, "code": err.code, "msg": str(err)})
            return
        req.respond({"ok": True, "value": result})
        self._deliver_watches(fired)

    def _apply(self, src: str, payload: Dict[str, Any]):
        op = payload["op"]
        tree = self.tree
        fired: list = []
        if op == "start-session":
            session = self._register_session(
                src, payload.get("timeout", SESSION_TIMEOUT_DEFAULT))
            return session, fired
        if op == "close-session":
            self._expire(payload["session"])
            return None, fired
        if op == "create":
            actual, fired = tree.create(
                payload["path"], payload.get("data", b""),
                ephemeral=payload.get("ephemeral", False),
                sequential=payload.get("sequential", False),
                session=payload.get("session"))
            return actual, fired
        if op == "delete":
            fired = tree.delete(payload["path"], payload.get("version", -1))
            return None, fired
        if op == "set":
            version, fired = tree.set_data(
                payload["path"], payload["data"],
                payload.get("version", -1))
            return version, fired
        if op == "get":
            data, version = tree.get(payload["path"])
            # ZooKeeper semantics: a failed get leaves no watch (the
            # NoNodeError above propagates before this line) — use
            # exists() to watch for creation.
            if payload.get("watch_id") is not None:
                tree.add_data_watch(payload["path"],
                                    (src, payload["watch_id"]))
            return (data, version), fired
        if op == "exists":
            if payload.get("watch_id") is not None:
                tree.add_data_watch(payload["path"],
                                    (src, payload["watch_id"]))
            return tree.exists(payload["path"]), fired
        if op == "children":
            if payload.get("watch_id") is not None:
                tree.add_child_watch(payload["path"],
                                     (src, payload["watch_id"]))
            return tree.children(payload["path"]), fired
        raise CoordError(f"unknown op {op!r}")


def error_from_code(code: str, msg: str) -> CoordError:
    """Rebuild the typed exception on the client side."""
    cls = ERRORS_BY_CODE.get(code, CoordError)
    return cls(msg)
