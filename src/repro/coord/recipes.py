"""Coordination recipes: group membership, locks, barriers.

"The combination of primitives supported by Zookeeper make it fairly easy
to implement distributed locks, barriers, group membership, and so on"
(§4.2).  These are the standard constructions; Spinnaker's event handler
uses group membership, and the examples/tests exercise all three.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.events import Event
from .client import CoordClient
from .znode import CoordError, NoNodeError, NodeExistsError, WatchEvent

__all__ = ["GroupMembership", "DistributedLock", "Barrier",
           "CohortMapBoard"]


class GroupMembership:
    """Ephemeral-znode group membership with change notifications.

    Each member registers an ephemeral child of the group path; members
    list the children to see who is alive and can watch for changes.
    """

    def __init__(self, client: CoordClient, group_path: str,
                 member_name: str):
        self.client = client
        self.group_path = group_path
        self.member_name = member_name
        self.member_path: Optional[str] = None

    def join(self, data: bytes = b""):
        yield from self.client.ensure_path(self.group_path)
        path = f"{self.group_path}/{self.member_name}"
        try:
            self.member_path = yield from self.client.create(
                path, data=data, ephemeral=True)
        except NodeExistsError:
            # A stale ephemeral from our previous incarnation; replace it.
            yield from self.client.delete(path)
            self.member_path = yield from self.client.create(
                path, data=data, ephemeral=True)
        return self.member_path

    def leave(self):
        if self.member_path is not None:
            try:
                yield from self.client.delete(self.member_path)
            except NoNodeError:
                pass
            self.member_path = None

    def members(self, watcher: Optional[Callable[[WatchEvent], None]] = None):
        try:
            return (yield from self.client.get_children(
                self.group_path, watcher=watcher))
        except NoNodeError:
            return []


class CohortMapBoard:
    """A monotonically versioned announcement board for the cohort map.

    The migration leader publishes the new map version here after the
    membership-change record commits; late joiners and operators read it
    to learn the routing epoch without scanning any cohort's log.  The
    znode holds ``<version>`` (optionally ``<version>|<payload>``) and
    only ever moves forward: publish uses the znode's compare-and-set
    version to lose races gracefully.
    """

    def __init__(self, client: CoordClient, path: str = "/map"):
        self.client = client
        self.path = path

    # `version` is the value being published, not a guard; the znode
    # compare-and-set arbitrates races.
    # lint: allow(stale-guard-across-yield)
    def publish(self, version: int, payload: bytes = b""):
        """Advance the board to ``version``; ``yield from`` me.  Returns
        True if this call advanced it, False if it was already there."""
        data = str(version).encode() + (b"|" + payload if payload else b"")
        while True:
            try:
                cur, zver = yield from self.client.get(self.path)
            except NoNodeError:
                try:
                    yield from self.client.create(self.path, data=data)
                    return True
                except NodeExistsError:
                    continue
            current = int(cur.split(b"|", 1)[0] or b"0")
            if current >= version:
                return False
            try:
                yield from self.client.set_data(self.path, data,
                                                version=zver)
                return True
            except CoordError:
                continue    # raced; re-read and re-check monotonicity

    def read(self):
        """Current (version, payload); (0, b"") when never published.
        ``yield from`` me."""
        try:
            data, _ = yield from self.client.get(self.path)
        except NoNodeError:
            return 0, b""
        if b"|" in data:
            head, payload = data.split(b"|", 1)
        else:
            head, payload = data, b""
        return int(head or b"0"), payload


class DistributedLock:
    """The classic sequential-ephemeral lock queue.

    Each contender creates ``<path>/lock-NNNN`` (ephemeral + sequential);
    the holder is the lowest sequence number.  A contender watches the
    znode *immediately before* its own to avoid herd effects.
    """

    def __init__(self, client: CoordClient, path: str):
        self.client = client
        self.path = path
        self.my_znode: Optional[str] = None

    def acquire(self):
        yield from self.client.ensure_path(self.path)
        self.my_znode = yield from self.client.create(
            f"{self.path}/lock-", ephemeral=True, sequential=True)
        my_name = self.my_znode.rsplit("/", 1)[1]
        while True:
            kids = sorted((yield from self.client.get_children(self.path)))
            if kids and kids[0] == my_name:
                return self.my_znode
            predecessor = max(k for k in kids if k < my_name)
            gone = Event(self.client.sim)

            def _on_change(_event: WatchEvent) -> None:
                if not gone.triggered:
                    gone.succeed()

            still_there = yield from self.client.exists(
                f"{self.path}/{predecessor}", watcher=_on_change)
            if still_there:
                yield gone

    def release(self):
        if self.my_znode is None:
            raise CoordError("lock not held")
        try:
            yield from self.client.delete(self.my_znode)
        finally:
            self.my_znode = None


class Barrier:
    """A double-barrier entry: proceed once ``quorum`` members arrived."""

    def __init__(self, client: CoordClient, path: str, member: str,
                 quorum: int):
        self.client = client
        self.path = path
        self.member = member
        self.quorum = quorum

    def enter(self) -> "object":
        yield from self.client.ensure_path(self.path)
        try:
            yield from self.client.create(
                f"{self.path}/{self.member}", ephemeral=True)
        except NodeExistsError:
            pass
        while True:
            arrived = Event(self.client.sim)

            def _on_change(_event: WatchEvent) -> None:
                if not arrived.triggered:
                    arrived.succeed()

            kids = yield from self.client.get_children(
                self.path, watcher=_on_change)
            if len(kids) >= self.quorum:
                return list(kids)
            yield arrived
