"""Client handle for the coordination service.

Every Spinnaker node embeds one of these (§7.2).  Operations are
generator functions used with ``yield from`` inside simulation processes::

    path = yield from zk.create("/r/candidates/c", data, ephemeral=True,
                                sequential=True)
    kids = yield from zk.get_children("/r/candidates", watcher=on_change)

Watches registered through ``watcher=`` are one-shot callbacks invoked
with a :class:`~repro.coord.znode.WatchEvent` when the notification
arrives.  A heartbeat process keeps the session alive; crash the owning
node (stop heartbeats) and the server expires the session, deleting its
ephemeral znodes — that is Spinnaker's failure detector.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from ..sim.events import Simulator
from ..sim.network import Endpoint, RpcTimeout
from ..sim.process import Process, spawn, timeout
from .service import SESSION_TIMEOUT_DEFAULT, error_from_code
from .znode import CoordError, NoNodeError, WatchEvent

__all__ = ["CoordClient", "SessionExpired"]


class SessionExpired(CoordError):
    """The coordination session died; ephemerals are gone."""

    code = "session-expired"


class CoordClient:
    """One node's session with the coordination service."""

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, endpoint: Endpoint,
                 service: str = "coord",
                 session_timeout: float = SESSION_TIMEOUT_DEFAULT):
        self.sim = sim
        self.endpoint = endpoint
        self.service = service
        self.session_timeout = session_timeout
        self.session: Optional[int] = None
        self._watchers: Dict[int, Callable[[WatchEvent], None]] = {}
        self._watch_ids = itertools.count(1)
        self._heartbeater: Optional[Process] = None
        self._dispatch_installed = False
        #: called once (with this client) when the session is lost — the
        #: server said so, or heartbeats went unacked long enough that it
        #: is about to expire us.  Spinnaker's leaders hang their leases
        #: off this signal (§7.2): step down *before* a rival can win.
        self.on_session_loss: Optional[Callable[["CoordClient"], None]] = None
        self.last_ack = 0.0

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def start(self, rpc_timeout: Optional[float] = None):
        """``yield from`` me: opens the session and starts heartbeats.

        ``rpc_timeout`` bounds the start-session RPC (callers that may be
        partitioned from the service retry on :class:`RpcTimeout`)."""
        if self.session is not None:   # idempotent under caller retries
            return self.session
        if self.endpoint._handler is None:
            # Standalone use (tests, recipes): install a dispatcher that
            # consumes watch events.  Nodes with their own dispatcher must
            # route coord messages to handle_watch_message themselves.
            self.endpoint.on_request(
                lambda req: self.handle_watch_message(req.payload))
        reply = yield self.endpoint.request(
            self.service, {"op": "start-session",
                           "timeout": self.session_timeout}, size=64,
            timeout=rpc_timeout)
        # Single-shot start: callers serialize start(), and the
        # idempotency gate above returns early when a session exists.
        # lint: allow(write-after-yield-unguarded)
        self.session = self._unwrap(reply)
        self.last_ack = self.sim.now
        self._heartbeater = spawn(
            self.sim, self._heartbeat_loop(),
            name=f"hb-{self.endpoint.name}")
        return self.session

    def stop(self) -> None:
        """Stop heartbeating (e.g. node crash).  The server will expire
        the session after the timeout, exactly like a real dead client."""
        if self._heartbeater is not None and self._heartbeater.is_alive:
            self._heartbeater.interrupt("stop")
        self._heartbeater = None
        self._watchers.clear()
        self.session = None

    def close(self):
        """Graceful shutdown: ``yield from`` me; expires the session now."""
        if self.session is None:
            return
        session = self.session
        self.stop()
        yield self.endpoint.request(
            self.service, {"op": "close-session", "session": session},
            size=64)

    def _heartbeat_loop(self):
        from ..sim.process import Interrupt
        interval = self.session_timeout / 3.0
        # Heartbeat RPC budget: the interval plus a round-trip
        # allowance from the network's latency model.  The allowance
        # matters when the coordination service sits across a WAN link:
        # with a bare ``timeout=interval`` an ack that is merely slow
        # (RTT approaching the interval) is discarded as an RpcTimeout,
        # ``last_ack`` goes stale, and a perfectly healthy leader flaps
        # through lease step-down.  The allowance is clamped to a sixth
        # of the session timeout so the safety argument below survives:
        # acks older than that cannot extend the lease anyway.
        rtt_allowance = min(self.endpoint.network.rtt_bound(64),
                            self.session_timeout / 6.0)
        # Local lease deadline: the server expires us ``session_timeout``
        # after the last heartbeat it *received*.  That arrival is never
        # earlier than the moment we *sent* the heartbeat, so the lease
        # is anchored at the send time of the last acked heartbeat —
        # anchoring at the ack's arrival instead would fold the reply's
        # WAN flight into the measured gap and flap a healthy lease at
        # steady RTTs above a sixth of the session timeout.  Declaring
        # the session lost at half the timeout still beats server-side
        # expiry — a deposed leader steps down before a rival is
        # electable.
        deadline = self.session_timeout / 2.0
        try:
            while True:
                yield timeout(self.sim, interval)
                sent_at = self.sim.now
                try:
                    reply = yield self.endpoint.request(
                        self.service,
                        {"op": "heartbeat", "session": self.session},
                        size=48, timeout=interval + rtt_allowance)
                except RpcTimeout:
                    reply = None
                if isinstance(reply, dict) and reply.get("ok"):
                    # Lease bookkeeping: monotonic, sole writer.
                    # lint: allow(write-after-yield-unguarded)
                    self.last_ack = sent_at
                elif isinstance(reply, dict):
                    self._session_lost()      # server: session expired
                    return
                if self.sim.now - self.last_ack > deadline:
                    self._session_lost()      # lease ran out
                    return
        except Interrupt:
            return

    def _session_lost(self) -> None:
        self._heartbeater = None   # we *are* it; don't self-interrupt
        callback, self.on_session_loss = self.on_session_loss, None
        if callback is not None:
            callback(self)

    # ------------------------------------------------------------------
    # Watch plumbing
    # ------------------------------------------------------------------
    def handle_watch_message(self, payload: Dict) -> bool:
        """Feed watch-event messages here from the node's dispatcher.

        Returns True if the message was a watch event (and was consumed).
        """
        if payload.get("op") != "watch-event":
            return False
        watcher = self._watchers.pop(payload["watch_id"], None)
        if watcher is not None:
            watcher(WatchEvent(payload["kind"], payload["path"]))
        return True

    def _register_watcher(
            self, watcher: Optional[Callable[[WatchEvent], None]]):
        if watcher is None:
            return None
        watch_id = next(self._watch_ids)
        self._watchers[watch_id] = watcher
        return watch_id

    # ------------------------------------------------------------------
    # Operations (generator functions; use with ``yield from``)
    # ------------------------------------------------------------------
    def _call(self, payload: Dict, size: int = 160):
        payload["session"] = self.session
        reply = yield self.endpoint.request(self.service, payload, size=size)
        return self._unwrap(reply)

    @staticmethod
    def _unwrap(reply: Dict):
        if reply["ok"]:
            return reply["value"]
        raise error_from_code(reply["code"], reply["msg"])

    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False):
        """Create a znode; returns the actual path (sequential suffix)."""
        return (yield from self._call({
            "op": "create", "path": path, "data": data,
            "ephemeral": ephemeral, "sequential": sequential,
        }, size=160 + len(data)))

    def delete(self, path: str, version: int = -1):
        return (yield from self._call(
            {"op": "delete", "path": path, "version": version}))

    def set_data(self, path: str, data: bytes, version: int = -1):
        return (yield from self._call(
            {"op": "set", "path": path, "data": data, "version": version},
            size=160 + len(data)))

    def get(self, path: str, watcher=None):
        """Returns (data, version); sets a one-shot data watch if given."""
        return (yield from self._call({
            "op": "get", "path": path,
            "watch_id": self._register_watcher(watcher)}))

    def exists(self, path: str, watcher=None):
        return (yield from self._call({
            "op": "exists", "path": path,
            "watch_id": self._register_watcher(watcher)}))

    def get_children(self, path: str, watcher=None):
        return (yield from self._call({
            "op": "children", "path": path,
            "watch_id": self._register_watcher(watcher)}))

    # -- conveniences used by recipes and the election protocol ----------
    def ensure_path(self, path: str):
        """Create ``path`` and any missing ancestors (persistent)."""
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            try:
                yield from self.create(current)
            except CoordError as err:
                if err.code != "node-exists":
                    raise

    def delete_recursive(self, path: str):
        """Delete a subtree (used to clean old election state, §7.2)."""
        try:
            kids = yield from self.get_children(path)
        except NoNodeError:
            return
        for kid in kids:
            yield from self.delete_recursive(f"{path}/{kid}")
        try:
            yield from self.delete(path)
        except NoNodeError:
            pass
