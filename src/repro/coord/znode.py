"""The znode tree: ZooKeeper's data model (§7.1), minus the network.

A znode is identified by its slash path, carries binary data and a
version, and may be *ephemeral* (deleted automatically when the owning
session dies) and/or *sequential* (a unique, monotonically increasing
counter is appended to its name at creation).  Watches are one-shot
triggers set by read operations; this module records which watches exist
and reports which fired for each mutation — delivering them to clients is
the service's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "ZNodeTree", "WatchEvent", "CoordError", "NoNodeError",
    "NodeExistsError", "NotEmptyError", "BadVersionError", "EphemeralError",
]


class CoordError(Exception):
    """Base class for coordination-service errors."""

    #: wire tag used by the RPC layer
    code = "coord"


class NoNodeError(CoordError):
    """The znode (or an ancestor) does not exist."""

    code = "no-node"


class NodeExistsError(CoordError):
    """A znode already exists at this path."""

    code = "node-exists"


class NotEmptyError(CoordError):
    """The znode still has children and cannot be deleted."""

    code = "not-empty"


class BadVersionError(CoordError):
    """The supplied znode version did not match (CAS failure)."""

    code = "bad-version"


class EphemeralError(CoordError):
    """Ephemeral znodes cannot have children."""

    code = "ephemeral-children"


ERRORS_BY_CODE = {
    cls.code: cls
    for cls in (NoNodeError, NodeExistsError, NotEmptyError,
                BadVersionError, EphemeralError, CoordError)
}


@dataclass(frozen=True)
class WatchEvent:
    """What a watcher receives: event type + the path it fired for."""

    kind: str   # "created" | "deleted" | "changed" | "children"
    path: str


@dataclass
class _Node:
    data: bytes = b""
    version: int = 0
    ephemeral_owner: Optional[int] = None   # session id
    children: Dict[str, "_Node"] = field(default_factory=dict)
    seq_counter: int = 0


def _split(path: str) -> List[str]:
    if not path.startswith("/"):
        raise CoordError(f"path must be absolute: {path!r}")
    if path == "/":
        return []
    parts = path.rstrip("/").split("/")[1:]
    if any(not p for p in parts):
        raise CoordError(f"malformed path: {path!r}")
    return parts


class ZNodeTree:
    """The tree plus the watch registry.

    Mutating operations return ``(result, fired_watches)`` where
    ``fired_watches`` is a list of ``(watch_owner, WatchEvent)`` pairs —
    watch owners are opaque tokens supplied when the watch was set (the
    service uses ``(client_name, watch_id)``).
    """

    def __init__(self) -> None:
        self._root = _Node()
        # path -> set of owners; one-shot, removed when fired
        self._data_watches: Dict[str, Set] = {}
        self._child_watches: Dict[str, Set] = {}
        # session id -> set of ephemeral paths
        self._ephemerals: Dict[int, Set[str]] = {}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def _find(self, path: str) -> Optional[_Node]:
        node = self._root
        for part in _split(path):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def _find_parent(self, path: str) -> Tuple[_Node, str]:
        parts = _split(path)
        if not parts:
            raise CoordError("cannot operate on the root")
        node = self._root
        for part in parts[:-1]:
            node = node.children.get(part)
            if node is None:
                raise NoNodeError(f"missing ancestor of {path}")
        return node, parts[-1]

    # ------------------------------------------------------------------
    # Watches
    # ------------------------------------------------------------------
    def add_data_watch(self, path: str, owner) -> None:
        self._data_watches.setdefault(path, set()).add(owner)

    def add_child_watch(self, path: str, owner) -> None:
        self._child_watches.setdefault(path, set()).add(owner)

    def _fire_data(self, path: str, kind: str, fired: List) -> None:
        owners = self._data_watches.pop(path, None)
        if owners:
            event = WatchEvent(kind, path)
            fired.extend((owner, event) for owner in sorted(owners, key=str))

    def _fire_children(self, parent_path: str, fired: List) -> None:
        owners = self._child_watches.pop(parent_path, None)
        if owners:
            event = WatchEvent("children", parent_path)
            fired.extend((owner, event) for owner in sorted(owners, key=str))

    def drop_watches_for(self, predicate) -> None:
        """Remove watches whose owner matches ``predicate(owner)``."""
        for registry in (self._data_watches, self._child_watches):
            for path in list(registry):
                registry[path] = {o for o in registry[path]
                                  if not predicate(o)}
                if not registry[path]:
                    del registry[path]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def create(self, path: str, data: bytes = b"",
               ephemeral: bool = False, sequential: bool = False,
               session: Optional[int] = None) -> Tuple[str, List]:
        """Create a znode; returns (actual path, fired watches)."""
        if ephemeral and session is None:
            raise CoordError("ephemeral znode requires a session")
        parent, name = self._find_parent(path)
        # locate the parent node object to check ephemerality
        if parent is not self._root and parent.ephemeral_owner is not None:
            raise EphemeralError(f"parent of {path} is ephemeral")
        if sequential:
            name = f"{name}{parent.seq_counter:010d}"
            parent.seq_counter += 1
        if name in parent.children:
            raise NodeExistsError(path)
        node = _Node(data=data,
                     ephemeral_owner=session if ephemeral else None)
        parent.children[name] = node
        parts = _split(path)
        actual = "/" + "/".join(parts[:-1] + [name]) if len(parts) > 1 \
            else "/" + name
        if ephemeral:
            self._ephemerals.setdefault(session, set()).add(actual)
        fired: List = []
        self._fire_data(actual, "created", fired)
        parent_path = "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"
        self._fire_children(parent_path, fired)
        return actual, fired

    def delete(self, path: str, version: int = -1) -> List:
        node = self._find(path)
        if node is None:
            raise NoNodeError(path)
        if node.children:
            raise NotEmptyError(path)
        if version != -1 and version != node.version:
            raise BadVersionError(f"{path}: {version} != {node.version}")
        parent, name = self._find_parent(path)
        del parent.children[name]
        if node.ephemeral_owner is not None:
            owned = self._ephemerals.get(node.ephemeral_owner)
            if owned:
                owned.discard(path)
        fired: List = []
        self._fire_data(path, "deleted", fired)
        parts = _split(path)
        parent_path = "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"
        self._fire_children(parent_path, fired)
        return fired

    def set_data(self, path: str, data: bytes,
                 version: int = -1) -> Tuple[int, List]:
        node = self._find(path)
        if node is None:
            raise NoNodeError(path)
        if version != -1 and version != node.version:
            raise BadVersionError(f"{path}: {version} != {node.version}")
        node.data = data
        node.version += 1
        fired: List = []
        self._fire_data(path, "changed", fired)
        return node.version, fired

    def get(self, path: str) -> Tuple[bytes, int]:
        node = self._find(path)
        if node is None:
            raise NoNodeError(path)
        return node.data, node.version

    def exists(self, path: str) -> bool:
        return self._find(path) is not None

    def children(self, path: str) -> List[str]:
        node = self._find(path)
        if node is None:
            raise NoNodeError(path)
        return sorted(node.children)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def expire_session(self, session: int) -> List:
        """Delete the session's ephemerals; returns all fired watches."""
        fired: List = []
        for path in sorted(self._ephemerals.pop(session, set())):
            try:
                fired.extend(self.delete(path))
            except CoordError:
                pass  # already gone (e.g. deleted explicitly)
        return fired

    def ephemeral_paths(self, session: int) -> Set[str]:
        return set(self._ephemerals.get(session, set()))
