"""Quickstart: boot a Spinnaker cluster, write, read, survive a failure.

Run with::

    python examples/quickstart.py

Everything happens inside the deterministic discrete-event simulator —
"seconds" below are simulated seconds, and the whole script runs in well
under a real second.
"""

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def main() -> None:
    # 1. Build and boot a 5-node cluster (3-way replication, Fig. 2
    #    layout).  SSD logging keeps this demo snappy.
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=0.5)
    cluster = SpinnakerCluster(n_nodes=5, config=config, seed=2024)
    cluster.start()
    print("cluster ready; leaders per cohort:")
    for cohort in cluster.partitioner.cohorts:
        print(f"  cohort {cohort.cohort_id} {cohort.key_range} "
              f"on {cohort.members} -> leader "
              f"{cluster.leader_of(cohort.cohort_id)}")

    # 2. Talk to it.  Client calls are generator functions driven by the
    #    simulator: write a script as a generator and spawn it.
    client = cluster.client()
    log = []

    def session():
        put = yield from client.put(b"user:42", b"email",
                                    b"ada@example.com")
        log.append(f"put -> version {put.version}")
        got = yield from client.get(b"user:42", b"email", consistent=True)
        log.append(f"strong get -> {got.value!r} (version {got.version})")

        # Optimistic concurrency with conditionalPut (§3): increment a
        # counter with compare-and-swap on the version number.
        yield from client.put(b"stats", b"visits", b"41")
        while True:
            current = yield from client.get(b"stats", b"visits",
                                            consistent=True)
            new_value = str(int(current.value) + 1).encode()
            try:
                yield from client.conditional_put(
                    b"stats", b"visits", new_value, current.version)
                break
            except Exception:  # VersionMismatch: somebody raced us
                continue
        final = yield from client.get(b"stats", b"visits", consistent=True)
        log.append(f"counter incremented to {final.value!r}")

    proc = spawn(cluster.sim, session())
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="session")
    for line in log:
        print(line)

    # 3. Kill the leader of the cohort holding user:42; Paxos elects a
    #    new one and committed data remains readable.
    from repro.core.partition import key_of
    cohort_id = cluster.partitioner.cohort_for_key(
        key_of(b"user:42")).cohort_id
    old = cluster.kill_leader(cohort_id)
    print(f"\nkilled leader {old} of cohort {cohort_id}...")
    cluster.run_until(
        lambda: cluster.leader_of(cohort_id) not in (None, old),
        limit=30.0, what="re-election")
    print(f"new leader: {cluster.leader_of(cohort_id)} "
          f"(elected in simulated time)")

    def after_failover():
        got = yield from client.get(b"user:42", b"email", consistent=True)
        log.append(f"after failover -> {got.value!r}")
        return got

    proc = spawn(cluster.sim, after_failover())
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="read")
    print(log[-1])
    assert proc.result().value == b"ada@example.com"
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
