"""Figure 1, live: why master-slave replication is not enough.

Walks the exact failure sequence from §1.1 under the three possible
failover policies, then runs the same sequence against a Spinnaker
cohort to show Paxos sailing through it.

Run with::

    python examples/master_slave_pitfall.py
"""

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.masterslave import MasterSlavePair, MSUnavailable
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.process import spawn
from repro.sim.rng import RngRegistry


def figure_1_sequence(policy: str) -> None:
    print(f"--- master-slave, policy={policy!r} ---")
    sim = Simulator()
    net = Network(sim, RngRegistry(1))
    pair = MasterSlavePair(sim, net, RngRegistry(2), policy=policy)
    outcome = {}

    def scenario():
        for i in range(10):                    # (a) both at LSN 10
            yield from pair.write(b"k%02d" % i, b"v")
        pair.slave.crash()                     # (b) slave down
        try:
            for i in range(10, 20):            # (c) master continues
                yield from pair.write(b"k%02d" % i, b"v")
        except MSUnavailable as err:
            outcome["blocked_at"] = str(err)
            return
        pair.master.crash()                    # ...then master dies
        pair.slave.restart()                   # (d) slave returns alone
        outcome["available"] = pair.available_for_writes()
        try:
            outcome["read_k15"] = pair.read(b"k15")
        except MSUnavailable as err:
            outcome["read_k15"] = f"UNAVAILABLE ({err})"
        outcome["lost_writes"] = pair.lost_writes()

    proc = spawn(sim, scenario())
    sim.run(until=60.0)
    assert proc.triggered
    for key, value in outcome.items():
        print(f"  {key}: {value}")
    print()


def spinnaker_same_sequence() -> None:
    print("--- Spinnaker cohort, same failure sequence ---")
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=0.2)
    cluster = SpinnakerCluster(n_nodes=3, config=config, seed=9)
    cluster.start()
    client = cluster.client()
    cohort_id = 0
    members = cluster.partitioner.cohort(cohort_id).members
    keys = []
    i = 0
    while len(keys) < 20:
        key = b"mk%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == cohort_id:
            keys.append(key)
        i += 1

    def run(gen, what):
        proc = spawn(cluster.sim, gen)
        cluster.run_until(lambda: proc.triggered, limit=60.0, what=what)
        return proc.result()

    def phase(lo, hi):
        for key in keys[lo:hi]:
            yield from client.put(key, b"v", b"x")

    run(phase(0, 10), "first writes")                 # (a)
    follower = next(m for m in members
                    if m != cluster.leader_of(cohort_id))
    cluster.crash_node(follower)                      # (b) one node down
    run(phase(10, 20), "writes with one node down")   # (c) writes continue
    leader = cluster.leader_of(cohort_id)
    cluster.kill_leader(cohort_id)                    # ...then leader dies
    cluster.restart_node(follower)                    # (d) follower returns
    cluster.run_until(
        lambda: cluster.leader_of(cohort_id) not in (None, leader),
        limit=60.0, what="re-election")

    def read_all():
        got = []
        for key in keys:
            result = yield from client.get(key, b"v", consistent=True)
            got.append(result.found)
        return got

    found = run(read_all(), "reads after the Fig. 1 sequence")
    print(f"  new leader: {cluster.leader_of(cohort_id)}")
    print(f"  all 20 committed writes readable: {all(found)}")
    print("  -> same sequence, zero committed writes lost, "
          "writes available again")


def main() -> None:
    figure_1_sequence("safe")    # unavailable at step (d)
    figure_1_sequence("unsafe")  # serves, silently loses LSN 11..20
    figure_1_sequence("block")   # refuses writes as soon as slave dies
    spinnaker_same_sequence()


if __name__ == "__main__":
    main()
