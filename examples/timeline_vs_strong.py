"""Strong vs timeline consistency, and the commit period (§3, §5).

Demonstrates the consistency/latency trade-off of Spinnaker's two read
levels:

* a *strong* read goes to the cohort leader and always sees the latest
  committed value;
* a *timeline* read can be served by any replica and may lag by up to
  one commit period — followers apply writes only when the leader's
  asynchronous commit message arrives.

The script writes a value, then polls both read levels at every replica
until the cohort converges, printing when each replica caught up.  It
then repeats with a shorter commit period to show staleness shrinking,
and finally contrasts with the baseline store, where even quorum reads
can disagree under concurrent writers (last-write-wins).

Run with::

    python examples/timeline_vs_strong.py
"""

from repro.baseline import QUORUM, CassandraCluster, CassandraConfig
from repro.core import SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def run(cluster, gen, what="client op"):
    proc = spawn(cluster.sim, gen)
    cluster.run_until(lambda: proc.triggered, limit=60.0, what=what)
    return proc.result()


def staleness_demo(commit_period: float) -> None:
    print(f"--- Spinnaker, commit period = {commit_period}s ---")
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=commit_period)
    cluster = SpinnakerCluster(n_nodes=3, config=config, seed=5)
    cluster.start()
    client = cluster.client()
    key = b"profile:1"
    cohort = cluster.partitioner.cohort_for_key(key_of(key))

    def write_it():
        yield from client.put(key, b"v", b"NEW")

    t_write = cluster.sim.now
    run(cluster, write_it(), "write")
    print(f"  write committed at t={cluster.sim.now - t_write:.4f}s "
          f"(leader {cluster.leader_of(cohort.cohort_id)})")

    def strong_read():
        return (yield from client.get(key, b"v", consistent=True))

    got = run(cluster, strong_read(), "strong read")
    print(f"  strong read immediately: {got.value!r} (never stale)")

    # Watch each follower's engine until the commit message lands.
    converged = {}
    deadline = cluster.sim.now + 3 * commit_period + 1.0
    while len(converged) < 3 and cluster.sim.now < deadline:
        for member in cohort.members:
            if member in converged:
                continue
            cell = cluster.nodes[member].replicas[
                cohort.cohort_id].engine.get(key, b"v")
            if cell is not None and cell.value == b"NEW":
                converged[member] = cluster.sim.now - t_write
        cluster.run(0.01)
    for member, when in sorted(converged.items(), key=lambda kv: kv[1]):
        role = ("leader" if member == cluster.leader_of(cohort.cohort_id)
                else "follower")
        print(f"  {member} ({role}) sees the new value after "
              f"{when:.3f}s")
    print()


def conflict_demo() -> None:
    print("--- baseline store: concurrent writers conflict (LWW) ---")
    config = CassandraConfig(log_profile=DiskProfile.ssd_log())
    cluster = CassandraCluster(n_nodes=3, config=config, seed=5)
    c1 = cluster.client("writer1")
    c2 = cluster.client("writer2")
    key = b"profile:1"

    def writer(client, value):
        yield from client.write(key, b"v", value, consistency=QUORUM)

    # Two clients write "simultaneously" through different coordinators.
    p1 = spawn(cluster.sim, writer(c1, b"FROM-WRITER-1"))
    p2 = spawn(cluster.sim, writer(c2, b"FROM-WRITER-2"))
    cluster.run_until(lambda: p1.triggered and p2.triggered, limit=30.0,
                      what="concurrent writes")

    def read_it():
        return (yield from c1.read(key, b"v", consistency=QUORUM))

    proc = spawn(cluster.sim, read_it())
    cluster.run_until(lambda: proc.triggered, limit=30.0, what="read")
    winner = proc.result()
    print(f"  both writes 'succeeded'; last-write-wins kept only "
          f"{winner.value!r}")
    print("  (Spinnaker's leader would have serialized them: version "
          "numbers expose both, conditionalPut detects the race)")


def main() -> None:
    staleness_demo(commit_period=1.0)
    staleness_demo(commit_period=0.1)
    conflict_demo()


if __name__ == "__main__":
    main()
