"""Leadership rebalancing after a failure — the §10 future-work item.

All of a cohort's writes flow through its leader (§8.3), so leader
placement determines load balance.  This script:

1. boots a 5-node cluster (one leader per node, Fig. 2 layout);
2. kills a node — a surviving peer absorbs its cohort and now leads two;
3. restarts the node, which rejoins as a follower (leading nothing);
4. plans and executes graceful leadership transfers
   (``repro.core.loadbalance``) back to one leader per node — with zero
   downtime beyond the momentary write block of the handoff drain.

Run with::

    python examples/leader_rebalance.py
"""

from collections import Counter

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.loadbalance import plan_rebalance, transfer_leadership
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn


def leader_map(cluster):
    return {c.cohort_id: cluster.leader_of(c.cohort_id)
            for c in cluster.partitioner.cohorts}


def show(cluster, label):
    leaders = leader_map(cluster)
    counts = Counter(v for v in leaders.values() if v)
    print(f"[{label}]")
    for cohort_id, leader in sorted(leaders.items()):
        print(f"  cohort {cohort_id}: leader={leader}")
    print(f"  leaders per node: {dict(sorted(counts.items()))}\n")
    return leaders


def main() -> None:
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=0.3)
    cluster = SpinnakerCluster(n_nodes=5, config=config, seed=88)
    cluster.start()
    cluster.run(2.0)
    show(cluster, "bootstrap: balanced")

    victim = cluster.leader_of(0)
    print(f"killing {victim}...\n")
    cluster.kill_leader(0)
    cluster.run_until(lambda: cluster.leader_of(0) is not None,
                      limit=30.0, what="failover")
    cluster.restart_node(victim)
    replica = cluster.replica(victim, 0)
    cluster.run_until(lambda: replica.role == Role.FOLLOWER, limit=30.0,
                      what="victim rejoined")
    cluster.run(1.0)
    leaders = show(cluster, "after failover: skewed")

    moves = plan_rebalance(cluster.partitioner, leaders)
    print(f"rebalance plan: {moves}\n")
    for cohort_id, src, dst in moves:
        source_replica = cluster.replica(src, cohort_id)

        def handoff(rep=source_replica, to=dst):
            ok = yield from transfer_leadership(rep, to)
            return ok

        proc = spawn(cluster.sim, handoff())
        cluster.run_until(lambda: proc.triggered, limit=30.0,
                          what="handoff")
        assert proc.result() is True
        cluster.run_until(lambda: cluster.leader_of(cohort_id) == dst,
                          limit=30.0, what="takeover")
        print(f"  cohort {cohort_id}: {src} -> {dst} (done)")
    cluster.run(1.0)
    print()
    leaders = show(cluster, "after rebalance: balanced again")
    counts = Counter(leaders.values())
    assert max(counts.values()) == 1
    print("rebalance OK")


if __name__ == "__main__":
    main()
