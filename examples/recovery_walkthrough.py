"""The Appendix B recovery example (Fig. 10), narrated live.

Seeds a 3-node cohort into the paper's S0 state — committed writes up to
1.20 everywhere, 1.21 logged by B and C only, 1.22 logged by C only —
then replays the whole S1→S4 sequence through the *real* election,
takeover, catch-up and logical-truncation code, printing each node's
(cmt, lst) after every transition exactly like Figure 10 does.

Run with::

    python examples/recovery_walkthrough.py
"""

from repro.core import Role, SpinnakerCluster, SpinnakerConfig
from repro.core.partition import key_of
from repro.sim.disk import DiskProfile
from repro.sim.process import spawn
from repro.storage.lsn import LSN
from repro.storage.records import CommitMarker, WriteRecord

COHORT = 0


def show_state(cluster, names, label):
    print(f"[{label}]")
    for name in names:
        node = cluster.nodes[name]
        wal = node.wal
        cmt = wal.last_committed_lsn(COHORT)
        lst = wal.last_lsn(COHORT)
        replica = node.replicas[COHORT]
        role = replica.role if node.alive else "down"
        print(f"  {name}: cmt={cmt} lst={lst} role={role}")
    print()


def main() -> None:
    config = SpinnakerConfig(log_profile=DiskProfile.ssd_log(),
                             commit_period=0.2)
    cluster = SpinnakerCluster(n_nodes=3, config=config, seed=7)
    a, b, c = cluster.partitioner.cohort(COHORT).members
    print(f"cohort {COHORT} members: A={a} B={b} C={c}\n")

    # Hand-build S0/S1: epoch-1 history as in Fig. 10.
    seed = {a: (20, LSN(1, 20)), b: (21, LSN(1, 10)), c: (22, LSN(1, 10))}
    for name, (last_seq, cmt) in seed.items():
        node = cluster.nodes[name]
        for seq in range(1, last_seq + 1):
            node.wal.append(WriteRecord(
                lsn=LSN(1, seq), cohort_id=COHORT, key=b"seed-%02d" % seq,
                colname=b"c", value=b"v%d" % seq, version=1), force=True)
        node.wal.append(CommitMarker(lsn=cmt, cohort_id=COHORT,
                                     committed_lsn=cmt), force=False)
    cluster.run(1.0)
    for name in (a, b, c):      # S1: everything down
        cluster.network.get(name).crash()
        cluster.nodes[name].device.crash()
        cluster.nodes[name].wal.crash()
    show_state(cluster, (a, b, c), "S0/S1: all nodes down; A was leader, "
               "1.21-1.22 uncommitted")

    # S2: A and B come back; B must win (lst 1.21 > 1.20) and discard
    # nothing it knows of; 1.22 is unseen because C is down.
    cluster.nodes[a].boot()
    cluster.nodes[b].boot()
    cluster.run_until(lambda: cluster.leader_of(COHORT) is not None,
                      limit=30.0, what="S2 election")
    cluster.run(1.0)
    print(f"elected leader: {cluster.leader_of(COHORT)} "
          f"(epoch {cluster.replica(b, COHORT).epoch})")
    show_state(cluster, (a, b), "S2: B re-proposed 1.11-1.21; "
               "1.22 effectively discarded")

    # S3: nine new client writes arrive as 2.22 .. 2.30.
    client = cluster.client()
    keys, i = [], 0
    while len(keys) < 9:
        key = b"new-%d" % i
        if cluster.partitioner.cohort_for_key(
                key_of(key)).cohort_id == COHORT:
            keys.append(key)
        i += 1

    def write_new():
        for key in keys:
            yield from client.put(key, b"c", b"fresh")

    proc = spawn(cluster.sim, write_new())
    cluster.run_until(lambda: proc.triggered, limit=60.0, what="S3 writes")
    cluster.run(1.0)
    show_state(cluster, (a, b), "S3: epoch bumped, writes 2.22-2.30 "
               "committed")

    # S4: C rejoins; catch-up must logically truncate its 1.22.
    cluster.nodes[c].boot()
    replica_c = cluster.replica(c, COHORT)
    cluster.run_until(lambda: replica_c.role == Role.FOLLOWER, limit=30.0,
                      what="S4 catch-up")
    cluster.run(1.0)
    show_state(cluster, (a, b, c), "S4: C caught up")
    print(f"C's skipped-LSN list: "
          f"{sorted(map(str, cluster.nodes[c].wal.skipped_lsns(COHORT)))}")
    print(f"1.22 still physically in C's log: "
          f"{cluster.nodes[c].wal.contains(COHORT, LSN(1, 22))} "
          f"(logical truncation, §6.1.1)")
    orphan = replica_c.engine.get(b"seed-22", b"c")
    print(f"value written by 1.22 visible at C: {orphan is not None}")
    assert orphan is None
    print("\nrecovery walkthrough OK — matches Fig. 10")


if __name__ == "__main__":
    main()
